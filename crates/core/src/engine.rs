//! The time-multiplexed engine timing model (Sec. III-B / III-C).
//!
//! Rather than a reconfigurable fabric, SpZip implements programmability by
//! time-multiplexing: a scratchpad holds the program's queues as circular
//! buffers, operator contexts hold per-operator configuration, and a
//! round-robin scheduler fires **one ready operator per cycle**. An
//! operator is ready when its input queue has an element, its output
//! queues have space, and its functional unit is available (the access
//! unit supports a bounded number of outstanding line requests).
//!
//! The model replays the per-operator firing traces produced by
//! [`crate::func::FuncEngine`] under those constraints. Decoupling,
//! backpressure, and run-ahead emerge from queue occupancy: the core sees
//! only its enqueue/dequeue interface.
//!
//! The same model implements the fetcher (issuing through the L2 port) and
//! the compressor (issuing through the LLC port).

use crate::dcl::Pipeline;
use crate::func::Firing;
use crate::QueueId;
use spzip_mem::hierarchy::MemorySystem;
use spzip_mem::Port;
use std::collections::VecDeque;

/// Static engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Scratchpad bytes available for queues (2 KB in the paper).
    pub scratchpad_bytes: u32,
    /// Outstanding line requests the access unit supports (8 in the paper).
    pub au_outstanding: usize,
    /// Cycles before a non-memory (transform) firing's output is visible.
    pub transform_latency: u64,
    /// Port this engine issues memory accesses through.
    pub port: Port,
    /// One-time cost of loading a DCL program (memory-mapped I/O writes).
    pub config_cycles: u64,
}

impl EngineConfig {
    /// The fetcher: 8 outstanding lines, L2 port. The paper's scratchpad
    /// is 2 KB; the default here is scaled down 4x with the caches (the
    /// scratchpad bounds the prefetch run-ahead distance, which must scale
    /// with cache residency — see DESIGN.md). The Fig. 21 sweep scales the
    /// 1/2/4 KB points accordingly.
    pub fn fetcher() -> Self {
        EngineConfig {
            scratchpad_bytes: 512,
            au_outstanding: 8,
            transform_latency: 2,
            port: Port::FetcherL2,
            config_cycles: 64,
        }
    }

    /// The paper's compressor: same engine at the LLC port.
    pub fn compressor() -> Self {
        EngineConfig {
            port: Port::EngineLlc,
            ..Self::fetcher()
        }
    }
}

#[derive(Debug, Default)]
struct QState {
    capacity_q: u32,
    /// Quarters visible to consumers.
    occupancy_q: u32,
    /// Quarters reserved by in-flight producer firings.
    reserved_q: u32,
}

#[derive(Debug)]
struct Pending {
    complete_at: u64,
    op: usize,
    produced_q: u16,
    /// Whether this pending entry holds an access-unit slot.
    uses_au: bool,
}

/// One engine-side queue movement, recorded for SimSanitizer trace
/// replay: engine firings pop their input queue when they fire and push
/// their outputs when the firing's latency elapses. Core-side pushes and
/// pops are recorded by the machine, which knows the core's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLogEntry {
    /// Queue operated on.
    pub q: QueueId,
    /// Quarter-words moved.
    pub quarters: u32,
    /// True for a push (occupancy increase), false for a pop.
    pub push: bool,
    /// Cycle at which the movement became visible.
    pub cycle: u64,
}

/// Why the engine could not fire on a given tick (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stall {
    /// No trace entries remain anywhere.
    Drained,
    /// Every runnable operator waits on input data.
    InputEmpty,
    /// Some operator is blocked on output-queue space.
    OutputFull,
    /// The access unit is out of outstanding-request slots.
    AuBusy,
    /// Only in-flight work remains (waiting on memory).
    InFlight,
}

/// The engine timing model. See the module docs.
pub struct EngineModel {
    cfg: EngineConfig,
    core: usize,
    queues: Vec<QState>,
    outputs: Vec<Vec<QueueId>>,
    inputs: Vec<QueueId>,
    traces: Vec<VecDeque<Firing>>,
    pending: Vec<Pending>,
    rr_next: usize,
    ready_at: u64,
    /// Total firings executed (utilization statistics).
    pub fired: u64,
    /// Ticks on which no operator could fire.
    pub stalled_ticks: u64,
    /// SimSanitizer queue-op log; filled only while logging is enabled.
    #[cfg(feature = "sanitize")]
    queue_log: Vec<QueueLogEntry>,
    #[cfg(feature = "sanitize")]
    log_queue_ops: bool,
}

impl EngineModel {
    /// Creates an engine for `core` with no program loaded.
    pub fn new(cfg: EngineConfig, core: usize) -> Self {
        EngineModel {
            cfg,
            core,
            queues: Vec::new(),
            outputs: Vec::new(),
            inputs: Vec::new(),
            traces: Vec::new(),
            pending: Vec::new(),
            rr_next: 0,
            ready_at: 0,
            fired: 0,
            stalled_ticks: 0,
            #[cfg(feature = "sanitize")]
            queue_log: Vec::new(),
            #[cfg(feature = "sanitize")]
            log_queue_ops: false,
        }
    }

    /// Turns SimSanitizer queue-op logging on or off.
    #[cfg(feature = "sanitize")]
    pub fn set_queue_logging(&mut self, on: bool) {
        self.log_queue_ops = on;
    }

    /// Takes the accumulated queue-op log.
    #[cfg(feature = "sanitize")]
    pub fn take_queue_log(&mut self) -> Vec<QueueLogEntry> {
        std::mem::take(&mut self.queue_log)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Loads a DCL program at cycle `now`: sizes the queues (scaled so the
    /// program's declared capacities fill the scratchpad, as in the Fig. 21
    /// sweep), clears traces, and charges the configuration cost.
    pub fn load_program(&mut self, pipeline: &Pipeline, now: u64) {
        // Built pipelines are lint-clean by construction; catch anyone
        // assembling a Pipeline through a back door (debug builds only).
        #[cfg(debug_assertions)]
        {
            let diags = crate::lint::lint(pipeline);
            debug_assert!(
                !crate::lint::has_errors(&diags),
                "engine loaded a pipeline that fails lint:\n{}",
                crate::lint::render(&diags)
            );
        }
        let declared: u32 = pipeline.scratchpad_words();
        let budget_words = self.cfg.scratchpad_bytes / 4;
        let scale = budget_words as f64 / declared.max(1) as f64;
        self.queues = pipeline
            .queues()
            .iter()
            .map(|q| QState {
                // Floor of 16 words (64 quarters): a queue must hold at
                // least one maximal firing (32 B + marker).
                capacity_q: (((q.capacity_words as f64 * scale) as u32).max(16)) * 4,
                occupancy_q: 0,
                reserved_q: 0,
            })
            .collect();
        self.outputs = pipeline
            .operators()
            .iter()
            .map(|op| op.outputs.clone())
            .collect();
        self.inputs = pipeline.operators().iter().map(|op| op.input).collect();
        self.traces = (0..pipeline.operators().len())
            .map(|_| VecDeque::new())
            .collect();
        self.pending.clear();
        self.rr_next = 0;
        self.ready_at = now + self.cfg.config_cycles;
    }

    /// Appends per-operator firings (from a functional run over newly
    /// enqueued work).
    ///
    /// # Panics
    ///
    /// Panics if no program is loaded or the trace count mismatches.
    pub fn append_trace(&mut self, firings: Vec<Vec<Firing>>) {
        assert_eq!(
            firings.len(),
            self.traces.len(),
            "trace/operator count mismatch"
        );
        for (t, f) in self.traces.iter_mut().zip(firings) {
            t.extend(f);
        }
    }

    /// Whether the core can enqueue `quarters` into queue `q` now.
    pub fn can_enqueue(&self, q: QueueId, quarters: u16) -> bool {
        let qs = &self.queues[q as usize];
        qs.occupancy_q + qs.reserved_q + quarters as u32 <= qs.capacity_q
    }

    /// Core-side enqueue (caller must have checked [`Self::can_enqueue`]).
    pub fn enqueue(&mut self, q: QueueId, quarters: u16) {
        debug_assert!(self.can_enqueue(q, quarters));
        self.queues[q as usize].occupancy_q += quarters as u32;
    }

    /// Whether the core can dequeue `quarters` from queue `q` now.
    pub fn can_dequeue(&self, q: QueueId, quarters: u16) -> bool {
        self.queues[q as usize].occupancy_q >= quarters as u32
    }

    /// Core-side dequeue (caller must have checked [`Self::can_dequeue`]).
    pub fn dequeue(&mut self, q: QueueId, quarters: u16) {
        debug_assert!(self.can_dequeue(q, quarters));
        self.queues[q as usize].occupancy_q -= quarters as u32;
    }

    /// Whether all traces are drained and no work is in flight.
    pub fn idle(&self) -> bool {
        self.pending.is_empty() && self.traces.iter().all(|t| t.is_empty())
    }

    /// Advances the engine through `[now, now + budget)` cycles, firing at
    /// most one operator per cycle. Returns the number of firings.
    pub fn tick(&mut self, now: u64, budget: u64, mem: &mut MemorySystem) -> u64 {
        if self.traces.is_empty() {
            return 0;
        }
        let mut fired_now = 0u64;
        for dt in 0..budget {
            let t = now + dt;
            if t < self.ready_at {
                continue;
            }
            self.commit_pending(t);
            if self.fire_one(t, mem) {
                fired_now += 1;
            } else {
                self.stalled_ticks += 1;
            }
        }
        // Commit anything that completes exactly at the end of the window
        // so core-side checks at `now + budget` see it.
        self.commit_pending(now + budget);
        self.fired += fired_now;
        fired_now
    }

    fn commit_pending(&mut self, t: u64) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].complete_at <= t {
                let p = self.pending.swap_remove(i);
                for &q in &self.outputs[p.op] {
                    let qs = &mut self.queues[q as usize];
                    qs.reserved_q -= p.produced_q as u32;
                    qs.occupancy_q += p.produced_q as u32;
                    #[cfg(feature = "sanitize")]
                    if self.log_queue_ops && p.produced_q > 0 {
                        self.queue_log.push(QueueLogEntry {
                            q,
                            quarters: p.produced_q as u32,
                            push: true,
                            cycle: p.complete_at,
                        });
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    fn au_in_use(&self) -> usize {
        self.pending.iter().filter(|p| p.uses_au).count()
    }

    /// Attempts to fire one ready operator (round-robin). Returns whether
    /// a firing happened.
    fn fire_one(&mut self, t: u64, mem: &mut MemorySystem) -> bool {
        let n_ops = self.traces.len();
        for scan in 0..n_ops {
            let op = (self.rr_next + scan) % n_ops;
            let Some(f) = self.traces[op].front().copied() else {
                continue;
            };
            // Input available?
            if self.queues[self.inputs[op] as usize].occupancy_q < f.consumed_q as u32 {
                continue;
            }
            // Output space (including in-flight reservations)?
            let fits = self.outputs[op].iter().all(|&q| {
                let qs = &self.queues[q as usize];
                qs.occupancy_q + qs.reserved_q + f.produced_q as u32 <= qs.capacity_q
            });
            if !fits {
                continue;
            }
            // Functional unit available?
            let uses_au = f.mem.is_some();
            if uses_au && self.au_in_use() >= self.cfg.au_outstanding {
                continue;
            }
            // Fire.
            self.traces[op].pop_front();
            self.queues[self.inputs[op] as usize].occupancy_q -= f.consumed_q as u32;
            #[cfg(feature = "sanitize")]
            if self.log_queue_ops && f.consumed_q > 0 {
                self.queue_log.push(QueueLogEntry {
                    q: self.inputs[op],
                    quarters: f.consumed_q as u32,
                    push: false,
                    cycle: t,
                });
            }
            for &q in &self.outputs[op] {
                self.queues[q as usize].reserved_q += f.produced_q as u32;
            }
            let complete_at = match f.mem {
                // Writes are posted: the access updates cache state and
                // traffic, but the unit does not wait for the round trip.
                Some(acc) if acc.op.is_write() => {
                    mem.issue(self.core, self.cfg.port, &acc, t);
                    t + 1
                }
                Some(acc) => mem.issue(self.core, self.cfg.port, &acc, t),
                None => t + self.cfg.transform_latency,
            };
            self.pending.push(Pending {
                complete_at,
                op,
                produced_q: f.produced_q,
                uses_au,
            });
            self.rr_next = (op + 1) % n_ops;
            return true;
        }
        false
    }

    /// Diagnoses why the engine cannot fire at `t` (after committing
    /// arrivals), for tests and deadlock reports.
    pub fn stall_reason(&mut self, t: u64) -> Stall {
        self.commit_pending(t);
        if self.idle() {
            return Stall::Drained;
        }
        if self.traces.iter().all(|t| t.is_empty()) {
            return Stall::InFlight;
        }
        let mut saw_output_full = false;
        let mut saw_au = false;
        for op in 0..self.traces.len() {
            let Some(f) = self.traces[op].front() else {
                continue;
            };
            if self.queues[self.inputs[op] as usize].occupancy_q < f.consumed_q as u32 {
                continue;
            }
            let fits = self.outputs[op].iter().all(|&q| {
                let qs = &self.queues[q as usize];
                qs.occupancy_q + qs.reserved_q + f.produced_q as u32 <= qs.capacity_q
            });
            if !fits {
                saw_output_full = true;
                continue;
            }
            if f.mem.is_some() && self.au_in_use() >= self.cfg.au_outstanding {
                saw_au = true;
            }
        }
        if saw_au {
            Stall::AuBusy
        } else if saw_output_full {
            Stall::OutputFull
        } else {
            Stall::InputEmpty
        }
    }

    /// Occupancy of queue `q` in quarter-words (tests, reporting).
    pub fn occupancy(&self, q: QueueId) -> u32 {
        self.queues[q as usize].occupancy_q
    }

    /// Number of queues in the loaded program (0 when none is loaded).
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }
}

impl std::fmt::Debug for EngineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineModel")
            .field("core", &self.core)
            .field("fired", &self.fired)
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::{OperatorKind, PipelineBuilder, RangeInput};
    use crate::func::FuncEngine;
    use crate::memory::MemoryImage;
    use spzip_mem::hierarchy::{MemConfig, MemorySystem};
    use spzip_mem::DataClass;

    /// Builds the Fig. 2 pipeline over real data and returns everything a
    /// timing test needs.
    fn fig2_setup() -> (Pipeline, MemoryImage, Vec<Vec<Firing>>, u16, u16) {
        let mut img = MemoryImage::new();
        let offsets: Vec<u64> = (0..=64u64).map(|i| i * 7).collect();
        let rows: Vec<u32> = (0..448u32).collect();
        let offsets_a = img.alloc_u64s("offsets", &offsets, DataClass::AdjacencyMatrix);
        let rows_a = img.alloc_u32s("rows", &rows, DataClass::AdjacencyMatrix);
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(16);
        let q1 = b.queue(32);
        let q2 = b.queue(64);
        b.operator(
            OperatorKind::RangeFetch {
                base: offsets_a,
                idx_bytes: 8,
                elem_bytes: 8,
                input: RangeInput::Pairs,
                marker: None,
                class: DataClass::AdjacencyMatrix,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::RangeFetch {
                base: rows_a,
                idx_bytes: 8,
                elem_bytes: 4,
                input: RangeInput::Consecutive,
                marker: Some(0),
                class: DataClass::AdjacencyMatrix,
            },
            q1,
            vec![q2],
        );
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        let mut enq = 0;
        enq += eng.enqueue_value(q0, 0, 8);
        enq += eng.enqueue_value(q0, 64, 8);
        eng.run(&mut img);
        let firings = eng.take_firings();
        let out_q: u32 = eng
            .drain_output_costed(q2)
            .iter()
            .map(|&(_, c)| c as u32)
            .sum();
        (p, img, firings, enq, out_q as u16)
    }

    #[test]
    fn replay_drains_trace_and_produces_all_output() {
        let (p, _img, firings, enq, out_q) = fig2_setup();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut model = EngineModel::new(EngineConfig::fetcher(), 0);
        model.load_program(&p, 0);
        model.append_trace(firings);
        model.enqueue(0, enq);
        let mut now = 0u64;
        let mut drained_q = 0u32;
        while !model.idle() && now < 2_000_000 {
            model.tick(now, 16, &mut mem);
            // The "core" drains the output queue greedily.
            while model.can_dequeue(2, 4) {
                model.dequeue(2, 4);
                drained_q += 4;
            }
            now += 16;
        }
        assert!(model.idle(), "engine wedged: {:?}", model.stall_reason(now));
        while model.can_dequeue(2, 4) {
            model.dequeue(2, 4);
            drained_q += 4;
        }
        assert_eq!(drained_q, out_q as u32);
        assert!(model.fired > 0);
    }

    #[test]
    fn backpressure_blocks_until_core_dequeues() {
        let (p, _img, firings, enq, _) = fig2_setup();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut model = EngineModel::new(EngineConfig::fetcher(), 0);
        model.load_program(&p, 0);
        model.append_trace(firings);
        model.enqueue(0, enq);
        // Run without the core ever dequeueing: the engine must stall with
        // full output queues, not wedge or overflow.
        let mut now = 0;
        for _ in 0..5000 {
            model.tick(now, 8, &mut mem);
            now += 8;
        }
        assert!(!model.idle());
        assert_eq!(model.stall_reason(now), Stall::OutputFull);
        let cap_before = model.occupancy(2);
        // Core drains; engine proceeds to completion.
        while !model.idle() && now < 4_000_000 {
            while model.can_dequeue(2, 4) {
                model.dequeue(2, 4);
            }
            model.tick(now, 8, &mut mem);
            now += 8;
        }
        assert!(
            model.idle(),
            "wedged after drain: {:?}",
            model.stall_reason(now)
        );
        assert!(cap_before > 0);
    }

    #[test]
    fn decoupling_runs_ahead_of_core() {
        let (p, _img, firings, enq, _) = fig2_setup();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut model = EngineModel::new(EngineConfig::fetcher(), 0);
        model.load_program(&p, 0);
        model.append_trace(firings);
        model.enqueue(0, enq);
        // Without any core dequeues, the fetcher fills its output queue.
        let mut now = 0;
        for _ in 0..3000 {
            model.tick(now, 8, &mut mem);
            now += 8;
        }
        assert!(
            model.occupancy(2) > 0,
            "fetcher ran ahead and buffered output"
        );
    }

    #[test]
    fn au_limit_bounds_outstanding_requests() {
        let (p, _img, firings, enq, _) = fig2_setup();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut cfg = EngineConfig::fetcher();
        cfg.au_outstanding = 1;
        let mut slow = EngineModel::new(cfg, 0);
        slow.load_program(&p, 0);
        slow.append_trace(firings.clone());
        slow.enqueue(0, enq);
        let run = |model: &mut EngineModel, mem: &mut MemorySystem| -> u64 {
            let mut now = 0;
            while !model.idle() && now < 10_000_000 {
                model.tick(now, 16, mem);
                while model.can_dequeue(2, 4) {
                    model.dequeue(2, 4);
                }
                now += 16;
            }
            now
        };
        let t_slow = run(&mut slow, &mut mem);
        let mut mem2 = MemorySystem::new(MemConfig::paper_scaled());
        let mut fast = EngineModel::new(EngineConfig::fetcher(), 0);
        fast.load_program(&p, 0);
        fast.append_trace(firings);
        fast.enqueue(0, enq);
        let t_fast = run(&mut fast, &mut mem2);
        assert!(
            t_slow > t_fast,
            "1 outstanding request ({t_slow}) must be slower than 8 ({t_fast})"
        );
    }

    #[test]
    fn config_cost_delays_start() {
        let (p, _img, firings, enq, _) = fig2_setup();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut model = EngineModel::new(EngineConfig::fetcher(), 0);
        model.load_program(&p, 0);
        model.append_trace(firings);
        model.enqueue(0, enq);
        model.tick(0, 32, &mut mem);
        assert_eq!(model.fired, 0, "nothing fires during configuration");
        model.tick(64, 32, &mut mem);
        assert!(model.fired > 0);
    }

    #[test]
    fn idle_engine_tick_is_cheap_noop() {
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut model = EngineModel::new(EngineConfig::fetcher(), 0);
        assert_eq!(model.tick(0, 1000, &mut mem), 0);
    }
}
