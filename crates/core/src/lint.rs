//! Static analysis ("lint") for DCL programs.
//!
//! [`lint`] runs over any [`Pipeline`] — built in code or parsed from text —
//! and returns structured [`Diagnostic`]s with stable codes (`E0xx` hard
//! errors, `W0xx` warnings), the offending operator or queue, an optional
//! source line from the parser, and a one-line fix hint. [`render`] formats a
//! diagnostic list in rustc style.
//!
//! The checks go beyond the structural validation that
//! [`PipelineBuilder::build`](crate::dcl::PipelineBuilder::build) always
//! enforced (cardinality, references, single producer/consumer, acyclicity):
//!
//! * **Deadlock freedom** (`E013`, `E014`, `E019`): every queue must be able
//!   to hold the largest atomic burst its producer emits in one firing
//!   (a ≤ 32-byte segment, or a 4-quarter chunk marker) and the largest
//!   per-firing demand of its consumer — otherwise the engine's round-robin
//!   scheduler can never fire the operator and the pipeline wedges. `E019`
//!   aggregates these per-queue faults into the core-visible consequence: a
//!   core-input → core-output path that can never drain.
//! * **Chunk-marker discipline** (`E015`, `E016`): operators that consume
//!   marker-delimited chunks ([`Decompress`](OperatorKind::Decompress),
//!   [`Compress`](OperatorKind::Compress), and append-mode
//!   [`MemQueue`](OperatorKind::MemQueue)) only flush on a marker, so a
//!   marker-less upstream stream starves them forever; and marker values
//!   that address MemQueue bins must stay within `num_queues`. (Markers are
//!   a distinct item kind on the queue bus, so they are always
//!   distinguishable from data words; only their *values* need checking.)
//! * **Width compatibility** (`E012`, `E017`): element/index widths must be
//!   powers of two that divide the 32-byte firing width — anything else
//!   breaks the burst accounting above — and the width produced into a queue
//!   must agree with what its consumer decodes.
//! * **Dead operators and unreachable queues** (`E018`, `W001`, `W002`):
//!   sinks with declared outputs starve their consumers (the hardware never
//!   pushes from a stream-writer), dangling queues waste scratchpad, and
//!   transforms with no outputs compute chunks nobody reads.
//! * **Scratchpad budget** (`W003`): declared queue words are checked
//!   against the per-engine scratchpad
//!   ([`DEFAULT_SCRATCHPAD_BYTES`]);
//!   the engine rescales on load, so oversubscription is a warning, not an
//!   error.
//! * **Traffic-class consistency** (`W004`): one base address tagged with
//!   two different [`DataClass`]es splits one stream's traffic across
//!   compression/placement policies.
//!
//! `build()` keeps its contract: diagnostics of [`Severity::Error`] deny the
//! build, warnings pass through. The full diagnostic registry is documented
//! in `DESIGN.md`.

use crate::dcl::{
    MemQueueMode, OperatorKind, OperatorSpec, Pipeline, QueueSpec, DEFAULT_SCRATCHPAD_BYTES,
    MAX_OPERATORS, MAX_QUEUES,
};
use crate::QueueId;
use spzip_mem::DataClass;
use std::collections::BTreeMap;
use std::fmt;

/// Version of the linter's rule set, bumped whenever a check is added,
/// removed, or its semantics change. Included in the bench driver's cache
/// fingerprint so cached results invalidate when analysis changes.
pub const LINT_VERSION: u32 = 1;

/// Largest payload one firing can move, in quarter-words (32 bytes —
/// `func::FIRE_BYTES`).
pub(crate) const FIRING_QUARTERS: u32 = 32;
/// Queue cost of a chunk marker, in quarter-words.
pub(crate) const MARKER_QUARTERS: u32 = 4;
/// Largest single item the core enqueues (a u64), in quarter-words.
pub(crate) const CORE_ENQUEUE_QUARTERS: u32 = 8;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal: the program builds and runs.
    Warning,
    /// The program is rejected by [`PipelineBuilder::build`](crate::dcl::PipelineBuilder::build).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. `E0xx` are hard errors, `W0xx` warnings,
/// `P0xx` performance predictions, `B0xx` shape-and-bounds violations,
/// `A0xx` codec-selection advisories, `D0xx` liveness (whole-pipeline
/// deadlock) violations, `V0xx` translation-validation (rewrite
/// equivalence) violations; codes are never renumbered so tools can
/// match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // each code is documented via `summary()` and DESIGN.md
pub enum Code {
    E001,
    E002,
    E003,
    E004,
    E005,
    E006,
    E007,
    E008,
    E009,
    E010,
    E011,
    E012,
    E013,
    E014,
    E015,
    E016,
    E017,
    E018,
    E019,
    W001,
    W002,
    W003,
    W004,
    P001,
    P002,
    P003,
    P004,
    P005,
    P006,
    B001,
    B002,
    B003,
    B004,
    B005,
    B006,
    B007,
    B008,
    A001,
    A002,
    A003,
    D001,
    D002,
    D003,
    D004,
    D005,
    D006,
    V001,
    V002,
    V003,
    V004,
    V005,
    V006,
}

impl Code {
    /// Every code in the registry, in numeric order.
    pub fn all() -> &'static [Code] {
        use Code::*;
        &[
            E001, E002, E003, E004, E005, E006, E007, E008, E009, E010, E011, E012, E013, E014,
            E015, E016, E017, E018, E019, W001, W002, W003, W004, P001, P002, P003, P004, P005,
            P006, B001, B002, B003, B004, B005, B006, B007, B008, A001, A002, A003, D001, D002,
            D003, D004, D005, D006, V001, V002, V003, V004, V005, V006,
        ]
    }

    /// The stable textual form, e.g. `"E013"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::E007 => "E007",
            Code::E008 => "E008",
            Code::E009 => "E009",
            Code::E010 => "E010",
            Code::E011 => "E011",
            Code::E012 => "E012",
            Code::E013 => "E013",
            Code::E014 => "E014",
            Code::E015 => "E015",
            Code::E016 => "E016",
            Code::E017 => "E017",
            Code::E018 => "E018",
            Code::E019 => "E019",
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::P005 => "P005",
            Code::P006 => "P006",
            Code::B001 => "B001",
            Code::B002 => "B002",
            Code::B003 => "B003",
            Code::B004 => "B004",
            Code::B005 => "B005",
            Code::B006 => "B006",
            Code::B007 => "B007",
            Code::B008 => "B008",
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::D004 => "D004",
            Code::D005 => "D005",
            Code::D006 => "D006",
            Code::V001 => "V001",
            Code::V002 => "V002",
            Code::V003 => "V003",
            Code::V004 => "V004",
            Code::V005 => "V005",
            Code::V006 => "V006",
        }
    }

    /// Errors deny `build()`; warnings pass through. `P0xx` performance
    /// predictions (emitted by [`perf`](crate::perf), never by [`lint`])
    /// are warnings: the pipeline runs correctly, just not as fast or as
    /// small as intended. `B0xx` shape violations (emitted by
    /// [`shape`](crate::shape), never by [`lint`]) are errors — the
    /// pipeline reads or writes memory its declared layout does not give
    /// it — but since they need a [`MemorySchema`](crate::shape::MemorySchema)
    /// they cannot be raised by `build()` itself. `A0xx` codec-selection
    /// advisories (emitted by [`suggest`](crate::suggest)) are warnings:
    /// they recommend a rewiring, they never fail a build or a CI gate.
    /// `D0xx` liveness violations (emitted by
    /// [`liveness`](crate::liveness), never by [`lint`]) are errors — the
    /// pipeline provably wedges under its only schedule — but, like shape
    /// codes, they come from a separate verification pass, not `build()`.
    /// `V0xx` translation-validation violations (emitted by
    /// [`equiv`](crate::equiv), never by [`lint`]) are errors — a rewrite
    /// changed what an observable sink carries — raised when two
    /// pipelines are compared, so again outside `build()`.
    pub fn severity(&self) -> Severity {
        if matches!(self.as_str().as_bytes()[0], b'E' | b'B' | b'D' | b'V') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }

    /// One-line description of what the code means (the registry entry).
    pub fn summary(&self) -> &'static str {
        match self {
            Code::E001 => "program declares no queues",
            Code::E002 => "program declares no operators",
            Code::E003 => "queue count exceeds the hardware limit",
            Code::E004 => "operator count exceeds the hardware limit",
            Code::E005 => "operator references an undeclared queue",
            Code::E006 => "operator writes its own input queue",
            Code::E007 => "queue has multiple producers",
            Code::E008 => "queue has multiple consumers",
            Code::E009 => "operator graph contains a cycle",
            Code::E010 => "MemQueue declares zero in-memory queues",
            Code::E011 => "MemQueue stride smaller than one chunk",
            Code::E012 => "invalid element or index width",
            Code::E013 => "queue cannot hold its producer's largest burst",
            Code::E014 => "queue cannot hold its consumer's per-firing demand",
            Code::E015 => "marker-less stream feeds a chunk-delimited consumer",
            Code::E016 => "marker value outside the MemQueue bin range",
            Code::E017 => "element width disagrees across a queue edge",
            Code::E018 => "sink operator declares output queues",
            Code::E019 => "core-input to core-output path can wedge",
            Code::W001 => "queue has no producer and no consumer",
            Code::W002 => "transform discards its output",
            Code::W003 => "declared queue words exceed the engine scratchpad",
            Code::W004 => "one base address used with different traffic classes",
            Code::P001 => "queue leaves no slack over producer burst plus consumer demand",
            Code::P002 => "compression scheme predicted to inflate its stream",
            Code::P003 => "pipeline predicted no faster than software traversal",
            Code::P004 => "engine service rate predicted to bottleneck a DRAM-bound pipeline",
            Code::P005 => "chunk-marker overhead dominates a queue's bandwidth",
            Code::P006 => "MemQueue chunks predicted far below a cache line",
            Code::B001 => "operator base address lies outside every declared region",
            Code::B002 => "index or bin stream can exceed its target's declared extent",
            Code::B003 => "operator element width disagrees with the region's declared width",
            Code::B004 => "codec framing disagrees between stream and region",
            Code::B005 => "framed/raw stream kind mismatches its consumer",
            Code::B006 => "decoded element width disagrees across a queue edge",
            Code::B007 => "core input or index stream has no declared shape",
            Code::B008 => "MemQueue footprint exceeds its region's extent",
            Code::A001 => "a different codec is predicted measurably faster on this queue",
            Code::A002 => "compression predicted net-negative on this queue",
            Code::A003 => "suggestion suppressed: verifier rejects the rewired pipeline",
            Code::D001 => "cyclic wait among engine operators: a capacity cycle wedges",
            Code::D002 => "cyclic wait through the core's coupled enqueue/dequeue",
            Code::D003 => "chunk consumer starves waiting for a marker that never arrives",
            Code::D004 => "fan-out imbalance: one full output blocks the others forever",
            Code::D005 => "chunk in flight exceeds downstream capacity mid-stream",
            Code::D006 => "pipeline admits no initial firing from its start state",
            Code::V001 => "observable sink carries a different value stream after the rewrite",
            Code::V002 => "rewrite pairs a codec with a transform that is not its inverse",
            Code::V003 => "rewrite drops or duplicates a value stream",
            Code::V004 => "rewrite changes an observable element width",
            Code::V005 => "rewrite reorders an indirection chain",
            Code::V006 => "rewrite changes the set of observable sinks",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// The program as a whole.
    Program,
    /// A queue, by id.
    Queue(QueueId),
    /// An operator, by definition index.
    Operator(usize),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Program => write!(f, "program"),
            Site::Queue(q) => write!(f, "queue q{q}"),
            Site::Operator(i) => write!(f, "operator {i}"),
        }
    }
}

/// One finding from the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code; severity derives from it.
    pub code: Code,
    /// The offending operator or queue.
    pub site: Site,
    /// Source line in the `.dcl` text, when the pipeline was parsed.
    pub line: Option<u32>,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// One-line suggested fix.
    pub hint: Option<String>,
}

impl Diagnostic {
    pub(crate) fn new(code: Code, site: Site, line: Option<u32>, message: String) -> Self {
        Diagnostic {
            code,
            site,
            line,
            message,
            hint: None,
        }
    }

    pub(crate) fn hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Error or warning, per the code registry.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)
    }
}

/// Renders diagnostics in rustc style:
///
/// ```text
/// error[E013]: queue q1 (4 words) cannot hold its producer's burst of 32 quarters
///   --> line 3 (queue q1)
///    = help: declare at least 8 words
/// ```
pub fn render(diags: &[Diagnostic]) -> String {
    let diags = sorted_for_render(diags);
    let mut out = String::new();
    for d in &diags {
        out.push_str(&format!("{d}\n"));
        match d.line {
            Some(l) => out.push_str(&format!("  --> line {l} ({})\n", d.site)),
            None => out.push_str(&format!("  --> {}\n", d.site)),
        }
        if let Some(h) = &d.hint {
            out.push_str(&format!("   = help: {h}\n"));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if errors > 0 {
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    } else if warnings > 0 {
        out.push_str(&format!("{warnings} warning(s)\n"));
    }
    out
}

/// Deterministic rendering order: a stable sort by (code, site, source
/// line), so multi-pass output — lint, shape, perf, and liveness
/// diagnostics folded into one list — is identical across runs no matter
/// how the passes interleaved. Within one (code, site, line) key the
/// original emission order is preserved (the sort is stable).
pub fn sorted_for_render(diags: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut out = diags.to_vec();
    out.sort_by_key(|d| {
        let (site_rank, site_idx) = match d.site {
            Site::Program => (0u8, 0usize),
            Site::Queue(q) => (1, q as usize),
            Site::Operator(i) => (2, i),
        };
        (d.code.as_str(), site_rank, site_idx, d.line)
    });
    out
}

/// Escapes `s` for inclusion in a JSON string literal. Public so tools
/// wrapping [`render_json`] output in named envelopes (`dcl-lint`,
/// `dcl-perf`) escape their keys the same way.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array — the machine-readable form shared
/// by `dcl-lint --format json` and `dcl-perf --format json`. Each element
/// carries the stable code, severity, site, optional source line, message,
/// and optional hint; the field set is append-only so downstream tooling
/// can match on it.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let diags = sorted_for_render(diags);
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\":\"{}\",\"severity\":\"{}\",\"site\":\"{}\"",
            d.code,
            d.severity(),
            json_escape(&d.site.to_string()),
        ));
        match d.line {
            Some(l) => out.push_str(&format!(",\"line\":{l}")),
            None => out.push_str(",\"line\":null"),
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
        match &d.hint {
            Some(h) => out.push_str(&format!(",\"hint\":\"{}\"}}", json_escape(h))),
            None => out.push_str(",\"hint\":null}"),
        }
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Lints a built pipeline. Built pipelines already passed the error-level
/// checks, so this returns warnings only — parse-time spans, when present,
/// are carried through.
pub fn lint(p: &Pipeline) -> Vec<Diagnostic> {
    lint_parts(
        p.queues(),
        p.operators(),
        p.queue_lines(),
        p.operator_lines(),
    )
}

/// True if any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

/// Largest number of quarter-words `kind` can push into each of its output
/// queues in a single firing; `None` for sinks that never push.
pub(crate) fn producer_burst_quarters(kind: &OperatorKind) -> Option<u32> {
    match kind {
        // Range fetches emit <=32-byte segments, then a 4-quarter marker.
        OperatorKind::RangeFetch { .. } => Some(FIRING_QUARTERS),
        // One element (or start/end pair) per firing, plus passed markers.
        OperatorKind::Indirect {
            elem_bytes, pair, ..
        } => {
            let payload = if *pair { 2 } else { 1 } * *elem_bytes as u32;
            Some(payload.clamp(MARKER_QUARTERS, FIRING_QUARTERS))
        }
        // Transforms emit in <=32-byte firings (func::emit_transformed).
        OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => Some(FIRING_QUARTERS),
        // Buffer-mode MQUs stream flushed bins in <=32-byte segments.
        OperatorKind::MemQueue {
            mode: MemQueueMode::Buffer,
            ..
        } => Some(FIRING_QUARTERS),
        // Stream writers and append MQUs never push downstream.
        OperatorKind::StreamWrite { .. }
        | OperatorKind::MemQueue {
            mode: MemQueueMode::Append,
            ..
        } => None,
    }
}

/// Largest number of quarter-words one firing of `kind` removes from its
/// input queue. A firing only happens once its demand is resident, so the
/// input queue must be at least this big.
pub(crate) fn consumer_demand_quarters(kind: &OperatorKind) -> u32 {
    match kind {
        // One index / value / marker item per firing (<= a u64's 8 quarters).
        OperatorKind::RangeFetch { .. }
        | OperatorKind::Indirect { .. }
        | OperatorKind::StreamWrite { .. } => CORE_ENQUEUE_QUARTERS,
        // Chunk transforms spread a chunk's cost over <=32-quarter firings.
        OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => FIRING_QUARTERS,
        OperatorKind::MemQueue { mode, .. } => match mode {
            // (bin id, payload) pairs: two items per firing.
            MemQueueMode::Buffer => 2 * CORE_ENQUEUE_QUARTERS,
            // Chunk cost spread over <=32-quarter write firings.
            MemQueueMode::Append => FIRING_QUARTERS,
        },
    }
}

/// Byte width of the values `kind` pushes downstream, when fixed.
fn output_width(kind: &OperatorKind) -> Option<u8> {
    match kind {
        OperatorKind::RangeFetch { elem_bytes, .. }
        | OperatorKind::Indirect { elem_bytes, .. }
        | OperatorKind::Decompress { elem_bytes, .. } => Some(*elem_bytes),
        // Compressors emit raw bytes.
        OperatorKind::Compress { .. } => Some(1),
        OperatorKind::MemQueue {
            mode: MemQueueMode::Buffer,
            elem_bytes,
            ..
        } => Some(*elem_bytes),
        OperatorKind::StreamWrite { .. }
        | OperatorKind::MemQueue {
            mode: MemQueueMode::Append,
            ..
        } => None,
    }
}

/// Byte width `kind` expects on its input queue, when it decodes one.
/// `None` means any width is accepted (indices, raw streams, id/payload
/// pairs).
fn expected_input_width(kind: &OperatorKind) -> Option<u8> {
    match kind {
        OperatorKind::RangeFetch { idx_bytes, .. } => Some(*idx_bytes),
        OperatorKind::Compress { elem_bytes, .. } => Some(*elem_bytes),
        // Compressed streams are byte streams.
        OperatorKind::Decompress { .. } => Some(1),
        OperatorKind::MemQueue {
            mode: MemQueueMode::Append,
            ..
        } => Some(1),
        OperatorKind::Indirect { .. }
        | OperatorKind::StreamWrite { .. }
        | OperatorKind::MemQueue {
            mode: MemQueueMode::Buffer,
            ..
        } => None,
    }
}

/// Whether `kind` only makes progress on marker-delimited chunks: without a
/// marker-emitting producer somewhere upstream it accumulates forever.
pub(crate) fn requires_markers(kind: &OperatorKind) -> bool {
    matches!(
        kind,
        OperatorKind::Decompress { .. }
            | OperatorKind::Compress { .. }
            | OperatorKind::MemQueue {
                mode: MemQueueMode::Append,
                ..
            }
    )
}

/// Element widths the fetch/transform datapaths support: they must divide
/// the 32-byte firing width or burst accounting (and the functional model's
/// chunking) breaks.
fn valid_elem_width(w: u8) -> bool {
    matches!(w, 1 | 2 | 4 | 8)
}

/// Core-side index widths.
fn valid_idx_width(w: u8) -> bool {
    matches!(w, 4 | 8)
}

/// The linter proper, over raw parts so both [`Pipeline`] and the builder
/// can run it. Deterministic: same input yields the same diagnostics in the
/// same order (no hash-order dependence anywhere).
pub(crate) fn lint_parts(
    queues: &[QueueSpec],
    operators: &[OperatorSpec],
    queue_lines: &[Option<u32>],
    op_lines: &[Option<u32>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nq = queues.len();
    let no = operators.len();
    let qline = |q: QueueId| queue_lines.get(q as usize).copied().flatten();
    let oline = |i: usize| op_lines.get(i).copied().flatten();

    // ---- phase A: cardinality, references, per-operator configuration ----
    if nq == 0 {
        diags.push(
            Diagnostic::new(Code::E001, Site::Program, None, "no queues declared".into())
                .hint("declare at least one queue for the core to enqueue into"),
        );
    }
    if no == 0 {
        diags.push(
            Diagnostic::new(
                Code::E002,
                Site::Program,
                None,
                "no operators declared".into(),
            )
            .hint("a pipeline needs at least one operator"),
        );
    }
    if nq == 0 || no == 0 {
        return diags;
    }
    if nq > MAX_QUEUES {
        diags.push(
            Diagnostic::new(
                Code::E003,
                Site::Program,
                None,
                format!("{nq} queues exceed the hardware limit of {MAX_QUEUES}"),
            )
            .hint("split the program across engines or merge streams"),
        );
    }
    if no > MAX_OPERATORS {
        diags.push(
            Diagnostic::new(
                Code::E004,
                Site::Program,
                None,
                format!("{no} operators exceed the hardware limit of {MAX_OPERATORS}"),
            )
            .hint("split the program across engines"),
        );
    }

    let mut bad_ref = false;
    for (i, op) in operators.iter().enumerate() {
        if op.input as usize >= nq {
            diags.push(
                Diagnostic::new(
                    Code::E005,
                    Site::Operator(i),
                    oline(i),
                    format!(
                        "operator {i} ({}) reads undeclared queue {}",
                        op.kind.name(),
                        op.input
                    ),
                )
                .hint(format!("declare queue {} before using it", op.input)),
            );
            bad_ref = true;
        }
        for &o in &op.outputs {
            if o as usize >= nq {
                diags.push(
                    Diagnostic::new(
                        Code::E005,
                        Site::Operator(i),
                        oline(i),
                        format!(
                            "operator {i} ({}) writes undeclared queue {o}",
                            op.kind.name()
                        ),
                    )
                    .hint(format!("declare queue {o} before using it")),
                );
                bad_ref = true;
            } else if o == op.input {
                diags.push(
                    Diagnostic::new(
                        Code::E006,
                        Site::Operator(i),
                        oline(i),
                        format!(
                            "operator {i} ({}) writes its own input queue {o}",
                            op.kind.name()
                        ),
                    )
                    .hint("route the output through a distinct queue"),
                );
            }
        }
    }
    if bad_ref {
        // Downstream analyses index by queue id; stop here.
        return diags;
    }

    for (i, op) in operators.iter().enumerate() {
        match &op.kind {
            OperatorKind::RangeFetch {
                idx_bytes,
                elem_bytes,
                ..
            } => {
                if !valid_idx_width(*idx_bytes) {
                    diags.push(
                        Diagnostic::new(
                            Code::E012,
                            Site::Operator(i),
                            oline(i),
                            format!("operator {i} (range) has invalid idx_bytes {idx_bytes}"),
                        )
                        .hint("index widths must be 4 or 8 bytes"),
                    );
                }
                if !valid_elem_width(*elem_bytes) {
                    diags.push(
                        Diagnostic::new(
                            Code::E012,
                            Site::Operator(i),
                            oline(i),
                            format!("operator {i} (range) has invalid elem_bytes {elem_bytes}"),
                        )
                        .hint("element widths must be 1, 2, 4 or 8 bytes"),
                    );
                }
            }
            OperatorKind::Indirect { elem_bytes, .. }
            | OperatorKind::Decompress { elem_bytes, .. }
            | OperatorKind::Compress { elem_bytes, .. } => {
                if !valid_elem_width(*elem_bytes) {
                    diags.push(
                        Diagnostic::new(
                            Code::E012,
                            Site::Operator(i),
                            oline(i),
                            format!(
                                "operator {i} ({}) has invalid elem_bytes {elem_bytes}",
                                op.kind.name()
                            ),
                        )
                        .hint("element widths must be 1, 2, 4 or 8 bytes"),
                    );
                }
            }
            OperatorKind::MemQueue {
                num_queues,
                stride,
                chunk_elems,
                elem_bytes,
                mode,
                ..
            } => {
                if *num_queues == 0 {
                    diags.push(
                        Diagnostic::new(
                            Code::E010,
                            Site::Operator(i),
                            oline(i),
                            format!("operator {i} (memqueue) declares zero in-memory queues"),
                        )
                        .hint("set nq to the number of bins"),
                    );
                }
                if !valid_elem_width(*elem_bytes) {
                    diags.push(
                        Diagnostic::new(
                            Code::E012,
                            Site::Operator(i),
                            oline(i),
                            format!("operator {i} (memqueue) has invalid elem_bytes {elem_bytes}"),
                        )
                        .hint("element widths must be 1, 2, 4 or 8 bytes"),
                    );
                }
                if *mode == MemQueueMode::Buffer
                    && *stride < *chunk_elems as u64 * *elem_bytes as u64
                {
                    diags.push(
                        Diagnostic::new(
                            Code::E011,
                            Site::Operator(i),
                            oline(i),
                            format!(
                                "operator {i} (memqueue) stride {stride} is smaller than one \
                                 chunk ({chunk_elems} x {elem_bytes} bytes)",
                            ),
                        )
                        .hint("bins must hold at least one buffered chunk"),
                    );
                }
            }
            OperatorKind::StreamWrite { .. } => {}
        }
        // Sinks never push; declared outputs would starve their consumers.
        if producer_burst_quarters(&op.kind).is_none() && !op.outputs.is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::E018,
                    Site::Operator(i),
                    oline(i),
                    format!(
                        "operator {i} ({}) is a sink but declares {} output queue(s)",
                        op.kind.name(),
                        op.outputs.len()
                    ),
                )
                .hint("sinks (streamwrite, append memqueue) take no outputs"),
            );
        }
        // Transforms that drop their result compute chunks nobody reads.
        if matches!(
            op.kind,
            OperatorKind::Decompress { .. } | OperatorKind::Compress { .. }
        ) && op.outputs.is_empty()
        {
            diags.push(
                Diagnostic::new(
                    Code::W002,
                    Site::Operator(i),
                    oline(i),
                    format!(
                        "operator {i} ({}) has no outputs: its result is discarded",
                        op.kind.name()
                    ),
                )
                .hint("connect an output queue or drop the operator"),
            );
        }
    }

    // ---- phase B: producer/consumer structure and acyclicity -------------
    let mut producers: Vec<Vec<usize>> = vec![Vec::new(); nq];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nq];
    for (i, op) in operators.iter().enumerate() {
        consumers[op.input as usize].push(i);
        for &o in &op.outputs {
            producers[o as usize].push(i);
        }
    }
    let mut structure_bad = false;
    for q in 0..nq {
        if producers[q].len() > 1 {
            diags.push(
                Diagnostic::new(
                    Code::E007,
                    Site::Queue(q as QueueId),
                    qline(q as QueueId),
                    format!("queue {q} has {} producers", producers[q].len()),
                )
                .hint("each queue takes exactly one producer; fan in through an operator"),
            );
            structure_bad = true;
        }
        if consumers[q].len() > 1 {
            diags.push(
                Diagnostic::new(
                    Code::E008,
                    Site::Queue(q as QueueId),
                    qline(q as QueueId),
                    format!("queue {q} has {} consumers", consumers[q].len()),
                )
                .hint("fan out by listing several outputs on the producer"),
            );
            structure_bad = true;
        }
        if producers[q].is_empty() && consumers[q].is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::W001,
                    Site::Queue(q as QueueId),
                    qline(q as QueueId),
                    format!("queue {q} has no producer and no consumer"),
                )
                .hint("remove the declaration to reclaim scratchpad"),
            );
        }
    }

    // Kahn's algorithm over operator nodes; also yields a topological order
    // for the stream-property propagation below.
    let producer_of: Vec<Option<usize>> = (0..nq).map(|q| producers[q].first().copied()).collect();
    let mut indeg: Vec<u32> = operators
        .iter()
        .map(|op| u32::from(producer_of[op.input as usize].is_some()))
        .collect();
    let mut ready: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut topo = Vec::with_capacity(no);
    while let Some(i) = ready.pop() {
        topo.push(i);
        for &o in &operators[i].outputs {
            for &c in &consumers[o as usize] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    ready.push(c);
                }
            }
        }
    }
    if topo.len() != no {
        diags.push(
            Diagnostic::new(
                Code::E009,
                Site::Program,
                None,
                "operator graph contains a cycle".into(),
            )
            .hint("DCL programs must be acyclic dataflow DAGs"),
        );
        structure_bad = true;
    }
    if structure_bad {
        // The semantic phase assumes single-producer/consumer DAG shape.
        return diags;
    }

    // ---- phase C: semantic stream analysis -------------------------------

    // E013: capacity vs producer burst (core enqueues for unproduced
    // queues). A queue smaller than one atomic burst can never accept the
    // firing that fills it: the producer stalls forever.
    for q in 0..nq {
        let cap_q = queues[q].capacity_words as u32 * 4;
        let (burst, what) = match producer_of[q] {
            Some(p) => match producer_burst_quarters(&operators[p].kind) {
                Some(b) => (b, format!("operator {p} ({})", operators[p].kind.name())),
                None => continue, // sink "producer": already E018
            },
            None if !consumers[q].is_empty() => (CORE_ENQUEUE_QUARTERS, "the core".to_string()),
            None => continue, // dangling: W001
        };
        if cap_q < burst {
            let need = burst.div_ceil(4);
            diags.push(
                Diagnostic::new(
                    Code::E013,
                    Site::Queue(q as QueueId),
                    qline(q as QueueId),
                    format!(
                        "queue {q} ({} words) cannot hold the largest burst {what} \
                         can emit in one firing ({burst} quarter-words): the pipeline deadlocks",
                        queues[q].capacity_words
                    ),
                )
                .hint(format!("declare at least {need} words")),
            );
        }
    }

    // E014: capacity vs consumer demand. A firing only launches once its
    // whole demand is resident; a smaller queue never reaches it.
    for q in 0..nq {
        let cap_q = queues[q].capacity_words as u32 * 4;
        let Some(&c) = consumers[q].first() else {
            continue;
        };
        let demand = consumer_demand_quarters(&operators[c].kind);
        if cap_q < demand {
            let need = demand.div_ceil(4);
            diags.push(
                Diagnostic::new(
                    Code::E014,
                    Site::Queue(q as QueueId),
                    qline(q as QueueId),
                    format!(
                        "queue {q} ({} words) cannot hold the {demand} quarter-words one \
                         firing of operator {c} ({}) consumes: the pipeline deadlocks",
                        queues[q].capacity_words,
                        operators[c].kind.name()
                    ),
                )
                .hint(format!("declare at least {need} words")),
            );
        }
    }

    // Stream properties propagated in topological order:
    //  - can the stream into queue q ever carry a chunk marker?
    //  - which constant marker values / bin-id bounds flow along it?
    let mut marker_capable = vec![false; nq];
    let mut marker_consts: Vec<Vec<u32>> = vec![Vec::new(); nq];
    let mut bin_bound: Vec<Option<u32>> = vec![None; nq];
    for q in 0..nq {
        if producer_of[q].is_none() && !consumers[q].is_empty() {
            // The core can enqueue markers directly.
            marker_capable[q] = true;
        }
    }
    for &i in &topo {
        let op = &operators[i];
        let inq = op.input as usize;
        let (capable, consts, bound) = match &op.kind {
            // A range fetch regenerates its stream (output items are
            // fetched elements, not input items); downstream chunk framing
            // must come from its own marker config, not from markers that
            // happen to survive pass-through two hops up.
            OperatorKind::RangeFetch { marker, .. } => {
                let mut consts = marker_consts[inq].clone();
                if let Some(m) = marker {
                    if !consts.contains(m) {
                        consts.push(*m);
                    }
                }
                (marker.is_some(), consts, bin_bound[inq])
            }
            // Indirections and transforms pass incoming markers through.
            OperatorKind::Indirect { .. }
            | OperatorKind::Decompress { .. }
            | OperatorKind::Compress { .. } => (
                marker_capable[inq],
                marker_consts[inq].clone(),
                bin_bound[inq],
            ),
            // Buffer MQUs re-emit flushed bins delimited by Marker(bin id).
            OperatorKind::MemQueue {
                mode: MemQueueMode::Buffer,
                num_queues,
                ..
            } => (true, Vec::new(), Some(*num_queues)),
            OperatorKind::StreamWrite { .. }
            | OperatorKind::MemQueue {
                mode: MemQueueMode::Append,
                ..
            } => (false, Vec::new(), None),
        };
        for &o in &op.outputs {
            marker_capable[o as usize] = capable;
            marker_consts[o as usize] = consts.clone();
            bin_bound[o as usize] = bound;
        }
    }

    // E015: chunk-delimited consumers need a marker-emitting producer
    // somewhere upstream, or they accumulate forever.
    for (i, op) in operators.iter().enumerate() {
        if requires_markers(&op.kind) && !marker_capable[op.input as usize] {
            diags.push(
                Diagnostic::new(
                    Code::E015,
                    Site::Operator(i),
                    oline(i),
                    format!(
                        "operator {i} ({}) consumes marker-delimited chunks but queue {} can \
                         never carry a marker: it would accumulate forever",
                        op.kind.name(),
                        op.input
                    ),
                )
                .hint("give an upstream range fetch a marker=N, or feed it from the core"),
            );
        }
    }

    // E016: marker values reaching a MemQueue address its bins.
    for (i, op) in operators.iter().enumerate() {
        if let OperatorKind::MemQueue { num_queues, .. } = &op.kind {
            let inq = op.input as usize;
            for &m in &marker_consts[inq] {
                if m >= *num_queues {
                    diags.push(
                        Diagnostic::new(
                            Code::E016,
                            Site::Operator(i),
                            oline(i),
                            format!(
                                "operator {i} (memqueue) has {num_queues} bins but an upstream \
                                 marker carries bin id {m}",
                            ),
                        )
                        .hint("markers reaching a memqueue select bins: keep them < nq"),
                    );
                }
            }
            if let Some(b) = bin_bound[inq] {
                if b > *num_queues {
                    diags.push(
                        Diagnostic::new(
                            Code::E016,
                            Site::Operator(i),
                            oline(i),
                            format!(
                                "operator {i} (memqueue) has {num_queues} bins but an upstream \
                                 memqueue emits bin ids up to {}",
                                b - 1
                            ),
                        )
                        .hint("downstream memqueues need at least as many bins as upstream"),
                    );
                }
            }
        }
    }

    // E017: width agreement across each queue edge.
    for (i, op) in operators.iter().enumerate() {
        let Some(expect) = expected_input_width(&op.kind) else {
            continue;
        };
        let Some(p) = producer_of[op.input as usize] else {
            continue; // core-fed: the software side chooses widths
        };
        let Some(got) = output_width(&operators[p].kind) else {
            continue;
        };
        if got != expect {
            diags.push(
                Diagnostic::new(
                    Code::E017,
                    Site::Operator(i),
                    oline(i),
                    format!(
                        "operator {i} ({}) decodes {expect}-byte values from queue {} but \
                         operator {p} ({}) produces {got}-byte values",
                        op.kind.name(),
                        op.input,
                        operators[p].kind.name()
                    ),
                )
                .hint("make elem_bytes/idx_bytes agree across the queue"),
            );
        }
    }

    // W004: one base address, two traffic classes.
    let mut base_class: BTreeMap<u64, (DataClass, usize)> = BTreeMap::new();
    let mut check_base = |base: u64, class: DataClass, i: usize, diags: &mut Vec<Diagnostic>| {
        match base_class.get(&base) {
            None => {
                base_class.insert(base, (class, i));
            }
            Some(&(first_class, first_op)) if first_class != class => {
                diags.push(
                    Diagnostic::new(
                        Code::W004,
                        Site::Operator(i),
                        oline(i),
                        format!(
                            "operator {i} ({}) tags base {base:#x} as {class:?} but operator \
                             {first_op} tagged it {first_class:?}",
                            operators[i].kind.name()
                        ),
                    )
                    .hint("one stream, one traffic class: split arrays or align the classes"),
                );
                // Report each conflicting base once.
                base_class.insert(base, (class, i));
            }
            Some(_) => {}
        }
    };
    for (i, op) in operators.iter().enumerate() {
        match &op.kind {
            OperatorKind::RangeFetch { base, class, .. }
            | OperatorKind::Indirect { base, class, .. }
            | OperatorKind::StreamWrite { base, class } => check_base(*base, *class, i, &mut diags),
            OperatorKind::MemQueue {
                data_base,
                meta_addr,
                class,
                ..
            } => {
                check_base(*data_base, *class, i, &mut diags);
                check_base(*meta_addr, *class, i, &mut diags);
            }
            OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => {}
        }
    }

    // W003: scratchpad budget. The engine rescales declared capacities on
    // load, so oversubscription distorts relative sizes rather than failing.
    let total_words: u32 = queues.iter().map(|q| q.capacity_words as u32).sum();
    let budget_words = DEFAULT_SCRATCHPAD_BYTES / 4;
    if total_words > budget_words {
        diags.push(
            Diagnostic::new(
                Code::W003,
                Site::Program,
                None,
                format!(
                    "declared queues total {total_words} words but the engine scratchpad \
                     holds {budget_words}: capacities will be scaled down on load",
                ),
            )
            .hint("shrink declared capacities to keep their ratios meaningful"),
        );
    }

    // E019: fold the per-queue deadlocks into the core-visible consequence —
    // a core-input -> core-output path through a wedged operator.
    let blocked: Vec<usize> = diags
        .iter()
        .filter_map(|d| match (d.code, d.site) {
            // E013 wedges the producer mid-burst (or, for a core-fed
            // queue, starves the consumer); E014 wedges the consumer.
            (Code::E013, Site::Queue(q)) => {
                producer_of[q as usize].or_else(|| consumers[q as usize].first().copied())
            }
            (Code::E014, Site::Queue(q)) => consumers[q as usize].first().copied(),
            _ => None,
        })
        .collect();
    if !blocked.is_empty() {
        // forward[i] = ops reachable from i (inclusive); back likewise.
        let reach = |start: usize, forward: bool| -> Vec<bool> {
            let mut seen = vec![false; no];
            let mut stack = vec![start];
            while let Some(i) = stack.pop() {
                if std::mem::replace(&mut seen[i], true) {
                    continue;
                }
                if forward {
                    for &o in &operators[i].outputs {
                        for &c in &consumers[o as usize] {
                            stack.push(c);
                        }
                    }
                } else if let Some(p) = producer_of[operators[i].input as usize] {
                    stack.push(p);
                }
            }
            seen
        };
        let core_in: Vec<QueueId> = (0..nq as QueueId)
            .filter(|&q| producer_of[q as usize].is_none() && !consumers[q as usize].is_empty())
            .collect();
        let core_out: Vec<QueueId> = (0..nq as QueueId)
            .filter(|&q| producer_of[q as usize].is_some() && consumers[q as usize].is_empty())
            .collect();
        for &ci in &core_in {
            let fwd = reach(consumers[ci as usize][0], true);
            let mut found = None;
            'outer: for &co in &core_out {
                let back = reach(producer_of[co as usize].unwrap(), false);
                for &b in &blocked {
                    if fwd[b] && back[b] {
                        found = Some((co, b));
                        break 'outer;
                    }
                }
            }
            if let Some((co, b)) = found {
                diags.push(
                    Diagnostic::new(
                        Code::E019,
                        Site::Queue(ci),
                        qline(ci),
                        format!(
                            "the path from core input queue {ci} to core output queue {co} \
                             crosses operator {b} ({}), which can never fire: data enqueued \
                             at {ci} wedges the engine",
                            operators[b].kind.name()
                        ),
                    )
                    .hint("fix the E013/E014 capacities on this path"),
                );
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::PipelineBuilder;
    use spzip_compress::CodecKind;

    fn range8(base: u64, marker: Option<u32>) -> OperatorKind {
        OperatorKind::RangeFetch {
            base,
            idx_bytes: 8,
            elem_bytes: 8,
            input: crate::dcl::RangeInput::Pairs,
            marker,
            class: DataClass::AdjacencyMatrix,
        }
    }

    fn codes(b: &PipelineBuilder) -> Vec<&'static str> {
        b.lint().iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn registry_is_consistent() {
        for c in Code::all() {
            assert_eq!(c.as_str().len(), 4);
            assert!(!c.summary().is_empty());
            match c.as_str().as_bytes()[0] {
                b'E' | b'B' | b'D' | b'V' => assert_eq!(c.severity(), Severity::Error),
                b'W' | b'P' | b'A' => assert_eq!(c.severity(), Severity::Warning),
                _ => panic!("bad code prefix"),
            }
        }
    }

    #[test]
    fn e001_e002_empty_program() {
        let b = PipelineBuilder::new();
        assert_eq!(codes(&b), vec!["E001", "E002"]);
    }

    #[test]
    fn e002_queue_without_operators() {
        let mut b = PipelineBuilder::new();
        b.queue(8);
        assert_eq!(codes(&b), vec!["E002"]);
    }

    #[test]
    fn e003_too_many_queues() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        for _ in 0..15 {
            b.queue(8);
        }
        b.operator(range8(0, None), q0, vec![q1]);
        assert!(codes(&b).contains(&"E003"));
    }

    #[test]
    fn e004_too_many_operators() {
        let mut b = PipelineBuilder::new();
        let mut prev = b.queue(8);
        for _ in 0..17 {
            let next = b.queue(8);
            b.operator(range8(0, None), prev, vec![next]);
            prev = next;
        }
        assert!(codes(&b).contains(&"E004"));
    }

    #[test]
    fn e005_undeclared_queue() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(range8(0, None), q0, vec![9]);
        assert_eq!(codes(&b), vec!["E005"]);
    }

    #[test]
    fn e006_self_loop() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(range8(0, None), q0, vec![q0]);
        assert!(codes(&b).contains(&"E006"));
    }

    #[test]
    fn e007_multiple_producers() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        let q2 = b.queue(8);
        b.operator(range8(0, None), q0, vec![q2]);
        b.operator(range8(0, None), q1, vec![q2]);
        assert!(codes(&b).contains(&"E007"));
    }

    #[test]
    fn e008_multiple_consumers() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        let q2 = b.queue(8);
        b.operator(range8(0, None), q0, vec![q1]);
        b.operator(range8(0, None), q0, vec![q2]);
        assert!(codes(&b).contains(&"E008"));
    }

    #[test]
    fn e009_cycle() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        b.operator(range8(0, None), q0, vec![q1]);
        b.operator(range8(0, None), q1, vec![q0]);
        assert!(codes(&b).contains(&"E009"));
    }

    #[test]
    fn e010_memqueue_zero_bins() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 0,
                data_base: 0x1000,
                stride: 4096,
                meta_addr: 0x8000,
                chunk_elems: 32,
                elem_bytes: 8,
                mode: MemQueueMode::Buffer,
                class: DataClass::Updates,
            },
            q0,
            vec![],
        );
        assert!(codes(&b).contains(&"E010"));
    }

    #[test]
    fn e011_memqueue_stride_too_small() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 4,
                data_base: 0x1000,
                stride: 8,
                meta_addr: 0x8000,
                chunk_elems: 32,
                elem_bytes: 8,
                mode: MemQueueMode::Buffer,
                class: DataClass::Updates,
            },
            q0,
            vec![],
        );
        assert!(codes(&b).contains(&"E011"));
    }

    #[test]
    fn e012_invalid_widths() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 3,
                elem_bytes: 5,
                input: crate::dcl::RangeInput::Pairs,
                marker: None,
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        let cs = codes(&b);
        assert_eq!(cs.iter().filter(|c| **c == "E012").count(), 2);
    }

    #[test]
    fn e013_queue_smaller_than_burst() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(4); // 16 quarters < a 32-quarter fetch segment
        b.operator(range8(0, None), q0, vec![q1]);
        let cs = codes(&b);
        assert!(cs.contains(&"E013"), "{cs:?}");
    }

    #[test]
    fn e013_core_fed_queue_too_small() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(1); // 4 quarters < one u64 enqueue
        let q1 = b.queue(16);
        b.operator(range8(0, None), q0, vec![q1]);
        assert!(codes(&b).contains(&"E013"));
    }

    #[test]
    fn e014_queue_smaller_than_demand() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(4); // 16 quarters < a transform's 32-quarter firing
        let q1 = b.queue(16);
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
            },
            q0,
            vec![q1],
        );
        let cs = codes(&b);
        assert!(cs.contains(&"E014"), "{cs:?}");
        assert!(!cs.contains(&"E013"), "core burst fits 16 quarters: {cs:?}");
    }

    #[test]
    fn e015_markerless_stream_into_compressor() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        let q2 = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 4,
                input: crate::dcl::RangeInput::Pairs,
                marker: None, // no chunk delimiters ever
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
                sort_chunks: false,
            },
            q1,
            vec![q2],
        );
        assert!(codes(&b).contains(&"E015"));
    }

    #[test]
    fn e016_marker_out_of_bin_range() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 1,
                input: crate::dcl::RangeInput::Pairs,
                marker: Some(9),
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 4,
                data_base: 0x1000,
                stride: 4096,
                meta_addr: 0x8000,
                chunk_elems: 32,
                elem_bytes: 8,
                mode: MemQueueMode::Append,
                class: DataClass::Updates,
            },
            q1,
            vec![],
        );
        assert!(codes(&b).contains(&"E016"));
    }

    #[test]
    fn e017_width_mismatch() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        let q2 = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 4, // produces 4-byte values...
                input: crate::dcl::RangeInput::Pairs,
                marker: Some(0),
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        b.operator(range8(64, Some(0)), q1, vec![q2]); // ...decoded as 8-byte indices
        assert!(codes(&b).contains(&"E017"));
    }

    #[test]
    fn e018_sink_with_outputs() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        b.operator(
            OperatorKind::StreamWrite {
                base: 0x1000,
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        assert!(codes(&b).contains(&"E018"));
    }

    #[test]
    fn e019_wedged_core_path() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(4); // wedges mid-path
        let q2 = b.queue(16);
        b.operator(range8(0, None), q0, vec![q1]);
        b.operator(range8(64, None), q1, vec![q2]);
        let cs = codes(&b);
        assert!(cs.contains(&"E013"), "{cs:?}");
        assert!(cs.contains(&"E019"), "{cs:?}");
    }

    #[test]
    fn w001_dangling_queue() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        b.queue(8); // never referenced
        b.operator(range8(0, None), q0, vec![q1]);
        assert_eq!(codes(&b), vec!["W001"]);
    }

    #[test]
    fn w002_transform_discards_output() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
                sort_chunks: false,
            },
            q0,
            vec![],
        );
        assert!(codes(&b).contains(&"W002"));
    }

    #[test]
    fn w003_scratchpad_oversubscribed() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(300);
        let q1 = b.queue(300);
        b.operator(range8(0, None), q0, vec![q1]);
        assert!(codes(&b).contains(&"W003"));
    }

    #[test]
    fn w004_base_class_conflict() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        let q2 = b.queue(16);
        b.operator(range8(0x1000, None), q0, vec![q1]);
        b.operator(
            OperatorKind::Indirect {
                base: 0x1000,
                elem_bytes: 8,
                pair: false,
                class: DataClass::DestinationVertex,
            },
            q1,
            vec![q2],
        );
        assert!(codes(&b).contains(&"W004"));
    }

    #[test]
    fn every_w_warning_renders_with_hint() {
        // One minimal pipeline per warning path; each must render in the
        // rustc style with its code, a site line, and a help hint.
        let mut dangling = PipelineBuilder::new();
        let q0 = dangling.queue(8);
        let q1 = dangling.queue(16);
        dangling.queue(8);
        dangling.operator(range8(0, None), q0, vec![q1]);

        let mut discarded = PipelineBuilder::new();
        let q0 = discarded.queue(8);
        discarded.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
                sort_chunks: false,
            },
            q0,
            vec![],
        );

        let mut oversubscribed = PipelineBuilder::new();
        let q0 = oversubscribed.queue(300);
        let q1 = oversubscribed.queue(300);
        oversubscribed.operator(range8(0, None), q0, vec![q1]);

        let mut conflicted = PipelineBuilder::new();
        let q0 = conflicted.queue(8);
        let q1 = conflicted.queue(16);
        let q2 = conflicted.queue(16);
        conflicted.operator(range8(0x1000, None), q0, vec![q1]);
        conflicted.operator(
            OperatorKind::Indirect {
                base: 0x1000,
                elem_bytes: 8,
                pair: false,
                class: DataClass::DestinationVertex,
            },
            q1,
            vec![q2],
        );

        for (code, b) in [
            ("W001", &dangling),
            ("W002", &discarded),
            ("W003", &oversubscribed),
            ("W004", &conflicted),
        ] {
            let diags = b.lint();
            let d = diags
                .iter()
                .find(|d| d.code.as_str() == code)
                .unwrap_or_else(|| panic!("{code} did not fire: {:?}", codes(b)));
            assert_eq!(d.severity(), Severity::Warning);
            assert!(d.hint.is_some(), "{code} must carry a hint");
            let out = render(std::slice::from_ref(d));
            assert!(out.contains(&format!("warning[{code}]")), "{out}");
            assert!(out.contains("  --> "), "{out}");
            assert!(out.contains("   = help: "), "{out}");
            assert!(out.contains("1 warning(s)"), "{out}");
        }
    }

    #[test]
    fn render_order_is_sorted_by_code_then_site() {
        // Feed diagnostics deliberately out of order, as interleaved
        // lint/shape/perf/liveness passes would; both renderers must sort.
        let d = |code, site, line| Diagnostic::new(code, site, line, "x".into());
        let diags = vec![
            d(Code::W003, Site::Program, None),
            d(Code::E013, Site::Queue(2), Some(7)),
            d(Code::D001, Site::Program, None),
            d(Code::E013, Site::Queue(1), Some(3)),
            d(Code::B002, Site::Operator(4), None),
        ];
        let order: Vec<String> = sorted_for_render(&diags)
            .iter()
            .map(|d| format!("{} {}", d.code, d.site))
            .collect();
        assert_eq!(
            order,
            vec![
                "B002 operator 4",
                "D001 program",
                "E013 queue q1",
                "E013 queue q2",
                "W003 program",
            ]
        );
        for renderer in [render(&diags), render_json(&diags)] {
            let pos = |c: &str| {
                renderer
                    .find(c)
                    .unwrap_or_else(|| panic!("{c}: {renderer}"))
            };
            assert!(pos("B002") < pos("D001"), "{renderer}");
            assert!(pos("D001") < pos("E013"), "{renderer}");
            assert!(pos("queue q1") < pos("queue q2"), "{renderer}");
            assert!(pos("queue q2") < pos("W003"), "{renderer}");
        }
    }

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        let q2 = b.queue(32);
        b.operator(range8(0x1000, None), q0, vec![q1]);
        b.operator(range8(0x2000, Some(0)), q1, vec![q2]);
        assert!(codes(&b).is_empty());
    }

    #[test]
    fn render_is_rustc_style() {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(4);
        b.operator(range8(0, None), q0, vec![q1]);
        let out = render(&b.lint());
        assert!(out.contains("error[E013]"), "{out}");
        assert!(out.contains("= help:"), "{out}");
        assert!(out.contains("--> queue q1"), "{out}");
    }
}
