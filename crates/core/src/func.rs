//! The functional DCL engine.
//!
//! Executes a validated [`Pipeline`] against a [`MemoryImage`], producing
//! (a) the output streams a core would dequeue and (b) a **firing trace**
//! per operator: each firing records the queue words consumed and produced
//! and the (at most one) memory access performed. The timing model in
//! [`crate::engine`] replays these traces under queue-occupancy, scheduler,
//! and memory constraints, so decoupled execution is a timing phenomenon
//! layered over functionally-exact streams.
//!
//! Word accounting is done in *quarter-words* (bytes of queue payload):
//! a 32-bit value is 4 quarters, a 64-bit value 8, a raw byte 1, and a
//! marker 4 (one tagged word). Producer and consumer accounting is exact
//! because each queue item carries its cost.

use crate::dcl::{MemQueueMode, OperatorKind, Pipeline, RangeInput};
use crate::memory::MemoryImage;
use crate::{QueueId, QueueItem};
use spzip_compress::CodecCtx;
use spzip_mem::{Access, DataClass, MemOp, LINE_BYTES};
use std::collections::VecDeque;

/// Peak bytes an operator moves per firing (the paper sizes units for up
/// to 32 bytes/cycle).
pub const FIRE_BYTES: u64 = 32;

/// One operator activation in the firing trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Firing {
    /// Quarter-words consumed from the operator's input queue.
    pub consumed_q: u16,
    /// Quarter-words produced to **each** of the operator's output queues.
    pub produced_q: u16,
    /// The memory access this firing performs, if any.
    pub mem: Option<Access>,
}

/// A queue item paired with its quarter-word cost.
type CostedItem = (QueueItem, u8);

#[derive(Debug, Default)]
struct OpState {
    /// RangeFetch: pending start index (Pairs) or previous boundary
    /// (Consecutive).
    carry: Option<u64>,
    /// Decompress/Compress/MemQueue-Append: accumulated chunk payload.
    chunk: Vec<u64>,
    /// Quarters consumed into the pending chunk so far.
    chunk_in_q: u32,
    /// StreamWrite: output cursor (bytes written so far).
    cursor: u64,
    /// StreamWrite: recorded chunk lengths.
    lengths: Vec<u64>,
    /// MemQueue Buffer: per-bin element counts.
    bin_counts: Vec<u32>,
    /// Decompress/Compress: cached codec context, rebuilt only when the
    /// operator's codec kind changes (i.e. once per pipeline).
    ctx: Option<CodecCtx>,
    /// Decompress/Compress: staging for decoded values / emitted byte
    /// values, reused across markers instead of allocated per chunk.
    stage_values: Vec<u64>,
    /// Decompress/Compress: staging for the encoded byte stream.
    stage_bytes: Vec<u8>,
}

/// The functional engine. See the module docs.
///
/// # Examples
///
/// Running the Fig. 2 CSR traversal:
///
/// ```
/// use spzip_core::dcl::*;
/// use spzip_core::func::FuncEngine;
/// use spzip_core::memory::MemoryImage;
/// use spzip_core::QueueItem;
/// use spzip_mem::DataClass;
///
/// let mut img = MemoryImage::new();
/// let offsets = img.alloc_u64s("offsets", &[0, 2, 4, 5, 7], DataClass::AdjacencyMatrix);
/// let rows = img.alloc_u32s("rows", &[1, 2, 0, 2, 3, 1, 2], DataClass::AdjacencyMatrix);
///
/// let mut b = PipelineBuilder::new();
/// let input = b.queue(16);
/// let offs_q = b.queue(32);
/// let rows_q = b.queue(64);
/// b.operator(OperatorKind::RangeFetch {
///     base: offsets, idx_bytes: 8, elem_bytes: 8,
///     input: RangeInput::Pairs, marker: None, class: DataClass::AdjacencyMatrix,
/// }, input, vec![offs_q]);
/// b.operator(OperatorKind::RangeFetch {
///     base: rows, idx_bytes: 8, elem_bytes: 4,
///     input: RangeInput::Consecutive, marker: Some(0), class: DataClass::AdjacencyMatrix,
/// }, offs_q, vec![rows_q]);
/// let p = b.build().unwrap();
///
/// let mut eng = FuncEngine::new(p.clone());
/// eng.enqueue_value(input, 0, 8);
/// eng.enqueue_value(input, 5, 8);  // traverse rows 0..5
/// eng.run(&mut img);
/// let out = eng.drain_output(rows_q);
/// // 7 neighbor values + 4 row-end markers.
/// assert_eq!(out.len(), 11);
/// assert_eq!(out[0], QueueItem::Value(1));
/// assert!(out[2].is_marker());
/// ```
pub struct FuncEngine {
    pipeline: Pipeline,
    queues: Vec<VecDeque<CostedItem>>,
    firings: Vec<Vec<Firing>>,
    states: Vec<OpState>,
    /// Core-side enqueues recorded as (queue, quarters), for event replay.
    enqueues: Vec<(QueueId, u16)>,
}

impl FuncEngine {
    /// Creates an engine over `pipeline` with empty queues.
    pub fn new(pipeline: Pipeline) -> Self {
        FuncEngine {
            queues: (0..pipeline.queues().len())
                .map(|_| VecDeque::new())
                .collect(),
            firings: (0..pipeline.operators().len())
                .map(|_| Vec::new())
                .collect(),
            states: (0..pipeline.operators().len())
                .map(|_| OpState::default())
                .collect(),
            enqueues: Vec::new(),
            pipeline,
        }
    }

    /// The pipeline being executed.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Core-side enqueue of a value of `elem_bytes`; returns its cost in
    /// quarter-words.
    pub fn enqueue_value(&mut self, q: QueueId, value: u64, elem_bytes: u8) -> u16 {
        let cost = elem_bytes.max(1) as u16;
        self.queues[q as usize].push_back((QueueItem::Value(value), cost as u8));
        self.enqueues.push((q, cost));
        cost
    }

    /// Core-side enqueue of a marker.
    pub fn enqueue_marker(&mut self, q: QueueId, value: u32) -> u16 {
        self.queues[q as usize].push_back((QueueItem::Marker(value), 4));
        self.enqueues.push((q, 4));
        4
    }

    /// Drains a core-facing output queue, discarding cost annotations.
    pub fn drain_output(&mut self, q: QueueId) -> Vec<QueueItem> {
        self.queues[q as usize]
            .drain(..)
            .map(|(item, _)| item)
            .collect()
    }

    /// Drains a core-facing output queue with per-item quarter costs.
    pub fn drain_output_costed(&mut self, q: QueueId) -> Vec<(QueueItem, u8)> {
        self.queues[q as usize].drain(..).collect()
    }

    /// The recorded core enqueues (queue, quarters) since construction.
    pub fn enqueue_log(&self) -> &[(QueueId, u16)] {
        &self.enqueues
    }

    /// Takes the per-operator firing traces accumulated so far.
    pub fn take_firings(&mut self) -> Vec<Vec<Firing>> {
        let n = self.firings.len();
        std::mem::replace(&mut self.firings, (0..n).map(|_| Vec::new()).collect())
    }

    /// StreamWrite chunk lengths recorded by operator `op_idx`.
    pub fn stream_lengths(&self, op_idx: usize) -> &[u64] {
        &self.op_state_ref(op_idx).lengths
    }

    /// StreamWrite/MemQueue cursor (total bytes written) of operator
    /// `op_idx`.
    pub fn stream_cursor(&self, op_idx: usize) -> u64 {
        self.op_state_ref(op_idx).cursor
    }

    fn op_state_ref(&self, idx: usize) -> &OpState {
        &self.states[idx]
    }

    /// Operators still holding an open (not marker-terminated) chunk, as
    /// `(operator index, buffered items)`. After a well-formed phase —
    /// closing markers enqueued, or [`Self::flush`] called — every entry
    /// is drained; leftovers mean buffered data would be silently lost,
    /// which is SimSanitizer's S004 drain-discipline violation (the
    /// dynamic twin of the linter's marker E-codes).
    pub fn open_chunks(&self) -> Vec<(usize, usize)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let buffered =
                    s.chunk.len() + s.bin_counts.iter().map(|&c| c as usize).sum::<usize>();
                (buffered > 0).then_some((i, buffered))
            })
            .collect()
    }

    /// Processes all operators until no further progress is possible.
    /// Queue contents destined for the core remain in their queues.
    pub fn run(&mut self, img: &mut MemoryImage) {
        loop {
            let mut progress = false;
            for idx in 0..self.pipeline.operators().len() {
                progress |= self.step_operator(idx, img);
            }
            if !progress {
                break;
            }
        }
    }

    /// Flushes stateful operators at end of phase: emits partial MemQueue
    /// chunks (the explicit close-markers path of Listing 5 is also
    /// available by enqueueing markers).
    pub fn flush(&mut self, img: &mut MemoryImage) {
        for idx in 0..self.pipeline.operators().len() {
            if let OperatorKind::MemQueue {
                mode: MemQueueMode::Buffer,
                num_queues,
                ..
            } = self.pipeline.operators()[idx].kind.clone()
            {
                for qid in 0..num_queues {
                    self.flush_bin(idx, qid, img);
                }
            }
        }
        self.run(img);
    }

    // ---- operator implementations ------------------------------------

    // The marker/value dispatch loops break mid-body; while-let would not
    // simplify them.
    #[allow(clippy::while_let_loop)]
    fn step_operator(&mut self, idx: usize, img: &mut MemoryImage) -> bool {
        let kind = self.pipeline.operators()[idx].kind.clone();
        let input = self.pipeline.operators()[idx].input;
        let mut progress = false;
        match kind {
            OperatorKind::RangeFetch {
                base,
                idx_bytes,
                elem_bytes,
                input: mode,
                marker,
                class,
            } => {
                while let Some((item, cost)) = self.pop(input) {
                    progress = true;
                    match item {
                        QueueItem::Marker(m) => self.pass_marker(idx, m, cost),
                        QueueItem::Value(v) => {
                            let state = &mut self.states[idx];
                            match (mode, state.carry) {
                                (RangeInput::Pairs, None) => {
                                    state.carry = Some(v);
                                    self.record(
                                        idx,
                                        Firing {
                                            consumed_q: cost as u16,
                                            produced_q: 0,
                                            mem: None,
                                        },
                                    );
                                }
                                (RangeInput::Pairs, Some(start)) => {
                                    self.states[idx].carry = None;
                                    self.emit_range(
                                        idx, base, start, v, idx_bytes, elem_bytes, marker, class,
                                        cost, img,
                                    );
                                }
                                (RangeInput::Consecutive, None) => {
                                    state.carry = Some(v);
                                    self.record(
                                        idx,
                                        Firing {
                                            consumed_q: cost as u16,
                                            produced_q: 0,
                                            mem: None,
                                        },
                                    );
                                }
                                (RangeInput::Consecutive, Some(prev)) => {
                                    self.states[idx].carry = Some(v);
                                    self.emit_range(
                                        idx, base, prev, v, idx_bytes, elem_bytes, marker, class,
                                        cost, img,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            OperatorKind::Indirect {
                base,
                elem_bytes,
                pair,
                class,
            } => {
                while let Some((item, cost)) = self.pop(input) {
                    progress = true;
                    match item {
                        QueueItem::Marker(m) => self.pass_marker(idx, m, cost),
                        QueueItem::Value(v) => {
                            let addr = base + v * elem_bytes as u64;
                            let has_out = !self.pipeline.operators()[idx].outputs.is_empty();
                            let n_elems = if pair { 2u64 } else { 1 };
                            let total = n_elems * elem_bytes as u64;
                            if has_out {
                                for e in 0..n_elems {
                                    let value =
                                        img.read_uint(addr + e * elem_bytes as u64, elem_bytes);
                                    self.push_all(idx, QueueItem::Value(value), elem_bytes);
                                }
                            } else {
                                let _ = img.read_uint(addr, elem_bytes);
                            }
                            // One firing per line segment (a pair can
                            // straddle a line boundary).
                            let mut first = true;
                            for (seg_addr, seg_len) in segments(addr, total) {
                                let seg_elems = seg_len / elem_bytes as u64;
                                self.record(
                                    idx,
                                    Firing {
                                        consumed_q: if first { cost as u16 } else { 0 },
                                        produced_q: if has_out {
                                            (seg_elems * elem_bytes as u64) as u16
                                        } else {
                                            0
                                        },
                                        mem: Some(Access::new(
                                            seg_addr,
                                            seg_len as u32,
                                            MemOp::Load,
                                            class,
                                        )),
                                    },
                                );
                                first = false;
                            }
                        }
                    }
                }
            }
            OperatorKind::Decompress { codec, elem_bytes } => {
                while let Some((item, cost)) = self.pop(input) {
                    progress = true;
                    match item {
                        QueueItem::Value(b) => {
                            self.states[idx].chunk.push(b);
                            self.states[idx].chunk_in_q += cost as u32;
                        }
                        QueueItem::Marker(m) => {
                            let state = &mut self.states[idx];
                            let consumed = state.chunk_in_q + cost as u32;
                            state.chunk_in_q = 0;
                            // Stage in the operator's reusable buffers; the
                            // take/put-back dance frees the borrow on
                            // `self.states` across `emit_transformed`.
                            let mut bytes = std::mem::take(&mut state.stage_bytes);
                            bytes.clear();
                            bytes.extend(state.chunk.drain(..).map(|v| v as u8));
                            let mut values = std::mem::take(&mut state.stage_values);
                            values.clear();
                            if !bytes.is_empty() {
                                CodecCtx::ensure(&mut state.ctx, codec)
                                    .decompress_frames(&bytes, &mut values)
                                    .expect("fetcher decompressed a corrupt stream");
                            }
                            self.emit_transformed(idx, &values, elem_bytes, consumed, Some(m));
                            let state = &mut self.states[idx];
                            state.stage_bytes = bytes;
                            state.stage_values = values;
                        }
                    }
                }
            }
            OperatorKind::Compress {
                codec,
                elem_bytes: _,
                sort_chunks,
            } => {
                while let Some((item, cost)) = self.pop(input) {
                    progress = true;
                    match item {
                        QueueItem::Value(v) => {
                            self.states[idx].chunk.push(v);
                            self.states[idx].chunk_in_q += cost as u32;
                        }
                        QueueItem::Marker(m) => {
                            let state = &mut self.states[idx];
                            let mut values = std::mem::take(&mut state.chunk);
                            let consumed = state.chunk_in_q + cost as u32;
                            state.chunk_in_q = 0;
                            if sort_chunks {
                                values.sort_unstable();
                            }
                            let mut bytes = std::mem::take(&mut state.stage_bytes);
                            bytes.clear();
                            if !values.is_empty() {
                                CodecCtx::ensure(&mut state.ctx, codec)
                                    .compress(&values, &mut bytes);
                            }
                            let mut byte_vals = std::mem::take(&mut state.stage_values);
                            byte_vals.clear();
                            byte_vals.extend(bytes.iter().map(|&b| b as u64));
                            self.emit_transformed(idx, &byte_vals, 1, consumed, Some(m));
                            // Put the staging buffers (and the chunk's
                            // capacity) back for the next marker.
                            let state = &mut self.states[idx];
                            state.stage_bytes = bytes;
                            state.stage_values = byte_vals;
                            values.clear();
                            state.chunk = values;
                        }
                    }
                }
            }
            OperatorKind::StreamWrite { base, class } => {
                while let Some((item, cost)) = self.pop(input) {
                    progress = true;
                    match item {
                        QueueItem::Marker(_) => {
                            let state = &mut self.states[idx];
                            let prev: u64 = state.lengths.iter().sum();
                            let len = state.cursor - prev;
                            state.lengths.push(len);
                            self.record(
                                idx,
                                Firing {
                                    consumed_q: cost as u16,
                                    produced_q: 0,
                                    mem: None,
                                },
                            );
                        }
                        QueueItem::Value(v) => {
                            let bytes = cost; // quarters == payload bytes
                            let addr = base + self.states[idx].cursor;
                            img.write_bytes(addr, &v.to_le_bytes()[..bytes as usize]);
                            self.states[idx].cursor += bytes as u64;
                            self.record(
                                idx,
                                Firing {
                                    consumed_q: cost as u16,
                                    produced_q: 0,
                                    mem: Some(Access::new(
                                        addr,
                                        bytes as u32,
                                        MemOp::StreamStore,
                                        class,
                                    )),
                                },
                            );
                        }
                    }
                }
            }
            OperatorKind::MemQueue {
                num_queues,
                data_base,
                stride,
                meta_addr,
                chunk_elems,
                elem_bytes,
                mode,
                class,
            } => {
                if self.states[idx].bin_counts.is_empty() {
                    self.states[idx].bin_counts = vec![0; num_queues as usize];
                }
                match mode {
                    MemQueueMode::Buffer => {
                        // Input alternates (qid value, payload value);
                        // Marker(qid) closes a bin.
                        loop {
                            let Some(&(first, _)) = self.queues[input as usize].front() else {
                                break;
                            };
                            match first {
                                QueueItem::Marker(qid) => {
                                    let (_, cost) = self.pop(input).unwrap();
                                    self.record(
                                        idx,
                                        Firing {
                                            consumed_q: cost as u16,
                                            produced_q: 0,
                                            mem: None,
                                        },
                                    );
                                    self.flush_bin(idx, qid, img);
                                    progress = true;
                                }
                                QueueItem::Value(qid) => {
                                    if self.queues[input as usize].len() < 2 {
                                        break;
                                    }
                                    let (_, qid_cost) = self.pop(input).unwrap();
                                    let (payload, pay_cost) = self.pop(input).unwrap();
                                    let qid = qid as u32;
                                    assert!(qid < num_queues, "MemQueue id {qid} out of range");
                                    let count = self.states[idx].bin_counts[qid as usize];
                                    let slot = data_base
                                        + qid as u64 * stride
                                        + count as u64 * elem_bytes as u64;
                                    img.write_bytes(
                                        slot,
                                        &payload.value().to_le_bytes()[..elem_bytes as usize],
                                    );
                                    self.record(
                                        idx,
                                        Firing {
                                            consumed_q: (qid_cost + pay_cost) as u16,
                                            produced_q: 0,
                                            mem: Some(Access::new(
                                                slot,
                                                elem_bytes as u32,
                                                MemOp::StreamStore,
                                                class,
                                            )),
                                        },
                                    );
                                    self.states[idx].bin_counts[qid as usize] = count + 1;
                                    if count + 1 == chunk_elems {
                                        self.flush_bin(idx, qid, img);
                                    }
                                    progress = true;
                                }
                            }
                        }
                    }
                    MemQueueMode::Append => {
                        while let Some((item, cost)) = self.pop(input) {
                            progress = true;
                            match item {
                                QueueItem::Value(b) => {
                                    self.states[idx].chunk.push(b);
                                    self.states[idx].chunk_in_q += cost as u32;
                                }
                                QueueItem::Marker(qid) => {
                                    let bytes: Vec<u8> =
                                        self.states[idx].chunk.drain(..).map(|v| v as u8).collect();
                                    let consumed = self.states[idx].chunk_in_q + cost as u32;
                                    self.states[idx].chunk_in_q = 0;
                                    let tail_addr = meta_addr + qid as u64 * 8;
                                    let tail = img.read_u64(tail_addr);
                                    assert!(
                                        tail + bytes.len() as u64 <= stride,
                                        "bin {qid} overflow: software must grow the bin (interrupt path)"
                                    );
                                    let dst = data_base + qid as u64 * stride + tail;
                                    img.write_bytes(dst, &bytes);
                                    img.write_u64(tail_addr, tail + bytes.len() as u64);
                                    self.states[idx].cursor += bytes.len() as u64;
                                    // Write firings per <=32B line segment,
                                    // consuming the input incrementally so a
                                    // whole chunk never has to fit in the
                                    // input queue at once.
                                    let segs = segments(dst, bytes.len() as u64);
                                    let n = segs.len() as u32 + 1; // + meta firing
                                    let per = consumed / n;
                                    let mut rem = consumed % n;
                                    let take = |rem: &mut u32| {
                                        let c = per + u32::from(*rem > 0);
                                        *rem = rem.saturating_sub(1);
                                        c as u16
                                    };
                                    for (addr, len) in segs {
                                        self.record(
                                            idx,
                                            Firing {
                                                consumed_q: take(&mut rem),
                                                produced_q: 0,
                                                mem: Some(Access::new(
                                                    addr,
                                                    len as u32,
                                                    MemOp::StreamStore,
                                                    class,
                                                )),
                                            },
                                        );
                                    }
                                    // Tail-pointer update.
                                    self.record(
                                        idx,
                                        Firing {
                                            consumed_q: take(&mut rem),
                                            produced_q: 0,
                                            mem: Some(Access::new(
                                                tail_addr,
                                                8,
                                                MemOp::Store,
                                                class,
                                            )),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        progress
    }

    /// Streams a buffered bin's chunk downstream and resets it.
    fn flush_bin(&mut self, idx: usize, qid: u32, img: &mut MemoryImage) {
        let OperatorKind::MemQueue {
            data_base,
            stride,
            chunk_elems: _,
            elem_bytes,
            class,
            ..
        } = self.pipeline.operators()[idx].kind.clone()
        else {
            unreachable!("flush_bin on non-MemQueue");
        };
        let count = self.states[idx].bin_counts[qid as usize];
        if count == 0 {
            return;
        }
        self.states[idx].bin_counts[qid as usize] = 0;
        let bin_base = data_base + qid as u64 * stride;
        // Read the chunk back and emit it, one firing per <=32 B segment.
        let total_bytes = count as u64 * elem_bytes as u64;
        let mut emitted = 0u64;
        for (addr, len) in segments(bin_base, total_bytes) {
            let n_elems = len / elem_bytes as u64;
            for e in 0..n_elems {
                let v = img.read_uint(addr + e * elem_bytes as u64, elem_bytes);
                self.push_all(idx, QueueItem::Value(v), elem_bytes);
            }
            self.record(
                idx,
                Firing {
                    consumed_q: 0,
                    produced_q: (n_elems * elem_bytes as u64) as u16,
                    mem: Some(Access::new(addr, len as u32, MemOp::Load, class)),
                },
            );
            emitted += n_elems;
        }
        debug_assert_eq!(emitted, count as u64);
        // Chunk delimiter carries the bin id.
        self.push_all(idx, QueueItem::Marker(qid), 4);
        self.record(
            idx,
            Firing {
                consumed_q: 0,
                produced_q: 4,
                mem: None,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_range(
        &mut self,
        idx: usize,
        base: u64,
        start: u64,
        end: u64,
        idx_bytes: u8,
        elem_bytes: u8,
        marker: Option<u32>,
        class: DataClass,
        end_cost: u8,
        img: &mut MemoryImage,
    ) {
        let _ = idx_bytes;
        let has_out = !self.pipeline.operators()[idx].outputs.is_empty();
        let start_addr = base + start * elem_bytes as u64;
        let total_bytes = end.saturating_sub(start) * elem_bytes as u64;
        let mut first = true;
        for (addr, len) in segments(start_addr, total_bytes) {
            let n_elems = len / elem_bytes.max(1) as u64;
            if has_out {
                if elem_bytes == 1 {
                    for b in img.read_bytes(addr, len as usize) {
                        self.push_all(idx, QueueItem::Value(b as u64), 1);
                    }
                } else {
                    for e in 0..n_elems {
                        let v = img.read_uint(addr + e * elem_bytes as u64, elem_bytes);
                        self.push_all(idx, QueueItem::Value(v), elem_bytes);
                    }
                }
            }
            self.record(
                idx,
                Firing {
                    consumed_q: if first { end_cost as u16 } else { 0 },
                    produced_q: if has_out { len as u16 } else { 0 },
                    mem: Some(Access::new(addr, len as u32, MemOp::Load, class)),
                },
            );
            first = false;
        }
        if let Some(mv) = marker {
            if has_out {
                self.push_all(idx, QueueItem::Marker(mv), 4);
            }
            self.record(
                idx,
                Firing {
                    consumed_q: if first { end_cost as u16 } else { 0 },
                    produced_q: if has_out { 4 } else { 0 },
                    mem: None,
                },
            );
        } else if total_bytes == 0 {
            // Zero-length range, no marker: still consume the input.
            self.record(
                idx,
                Firing {
                    consumed_q: end_cost as u16,
                    produced_q: 0,
                    mem: None,
                },
            );
        }
    }

    /// Emits transformed (de/compressed) output values in <=32 B firings,
    /// distributing `consumed` quarters across them, then passes `marker`.
    fn emit_transformed(
        &mut self,
        idx: usize,
        values: &[u64],
        elem_bytes: u8,
        consumed: u32,
        marker: Option<u32>,
    ) {
        let total_out =
            values.len() as u64 * elem_bytes as u64 + if marker.is_some() { 4 } else { 0 };
        // The unit moves at most 32 B/cycle on BOTH sides: enough firings
        // to cover whichever direction is larger (compression can shrink
        // 256 B of input into a few output bytes, and vice versa).
        let n_firings = total_out
            .div_ceil(FIRE_BYTES)
            .max((consumed as u64).div_ceil(FIRE_BYTES))
            .max(1);
        let per_firing = consumed as u64 / n_firings;
        let mut remainder = consumed as u64 % n_firings;
        let mut vi = 0usize;
        let mut out_left = total_out;
        for _ in 0..n_firings {
            let this_out = out_left.min(FIRE_BYTES);
            out_left -= this_out;
            let mut produced = 0u64;
            while vi < values.len() && produced + elem_bytes as u64 <= this_out {
                self.push_all(idx, QueueItem::Value(values[vi]), elem_bytes);
                produced += elem_bytes as u64;
                vi += 1;
            }
            if out_left == 0 {
                if let Some(m) = marker {
                    if produced + 4 <= this_out || vi == values.len() {
                        self.push_all(idx, QueueItem::Marker(m), 4);
                        produced += 4;
                    }
                }
            }
            let consumed_now = per_firing + if remainder > 0 { 1 } else { 0 };
            remainder = remainder.saturating_sub(1);
            self.record(
                idx,
                Firing {
                    consumed_q: consumed_now as u16,
                    produced_q: produced as u16,
                    mem: None,
                },
            );
        }
        debug_assert_eq!(vi, values.len(), "all values emitted");
    }

    // ---- queue plumbing -----------------------------------------------

    fn pop(&mut self, q: QueueId) -> Option<CostedItem> {
        self.queues[q as usize].pop_front()
    }

    fn push_all(&mut self, op_idx: usize, item: QueueItem, cost: u8) {
        let outputs = self.pipeline.operators()[op_idx].outputs.clone();
        for q in outputs {
            self.queues[q as usize].push_back((item, cost));
        }
    }

    fn pass_marker(&mut self, idx: usize, m: u32, cost: u8) {
        let has_out = !self.pipeline.operators()[idx].outputs.is_empty();
        if has_out {
            self.push_all(idx, QueueItem::Marker(m), 4);
        }
        self.record(
            idx,
            Firing {
                consumed_q: cost as u16,
                produced_q: if has_out { 4 } else { 0 },
                mem: None,
            },
        );
    }

    fn record(&mut self, idx: usize, firing: Firing) {
        self.firings[idx].push(firing);
    }
}

/// Splits `[start, start+len)` into segments that cross neither a cache
/// line nor the 32-byte firing width.
fn segments(start: u64, len: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut addr = start;
    let end = start + len;
    while addr < end {
        let line_end = (addr / LINE_BYTES + 1) * LINE_BYTES;
        let seg_end = end.min(line_end).min(addr + FIRE_BYTES);
        out.push((addr, seg_end - addr));
        addr = seg_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::{OperatorKind, PipelineBuilder, RangeInput};
    use spzip_compress::CodecKind;

    #[test]
    fn segments_respect_lines_and_fire_width() {
        // 100 bytes starting at 40: 24 to line end, then 32+8 (line), ...
        let segs = segments(40, 100);
        assert!(segs.iter().all(|&(_, l)| l <= 32));
        let total: u64 = segs.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 100);
        for w in segs.windows(2) {
            assert_eq!(w[0].0 + w[0].1, w[1].0, "contiguous");
        }
        for &(a, l) in &segs {
            assert_eq!(a / 64, (a + l - 1) / 64, "no line crossing");
        }
    }

    #[test]
    fn indirect_prefetch_only_has_no_output() {
        let mut img = MemoryImage::new();
        let arr = img.alloc_u64s("scores", &[10, 20, 30], DataClass::DestinationVertex);
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        b.operator(
            OperatorKind::Indirect {
                base: arr,
                elem_bytes: 8,
                pair: false,
                class: DataClass::DestinationVertex,
            },
            q0,
            vec![],
        );
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        eng.enqueue_value(q0, 2, 4);
        eng.run(&mut img);
        let firings = eng.take_firings();
        assert_eq!(firings[0].len(), 1);
        let f = firings[0][0];
        assert_eq!(f.produced_q, 0);
        let acc = f.mem.unwrap();
        assert_eq!(acc.addr, arr + 16);
    }

    #[test]
    fn decompress_roundtrips_a_compressed_row() {
        use spzip_compress::Codec;
        let mut img = MemoryImage::new();
        let row: Vec<u64> = vec![5, 7, 8, 100];
        let mut bytes = Vec::new();
        spzip_compress::delta::DeltaCodec::new().compress(&row, &mut bytes);
        let blob = img.alloc_from("crow", &bytes, DataClass::AdjacencyMatrix);

        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(32);
        let q2 = b.queue(32);
        b.operator(
            OperatorKind::RangeFetch {
                base: blob,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(0),
                class: DataClass::AdjacencyMatrix,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
            },
            q1,
            vec![q2],
        );
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        eng.enqueue_value(q0, 0, 8);
        eng.enqueue_value(q0, bytes.len() as u64, 8);
        eng.run(&mut img);
        let out = eng.drain_output(q2);
        let values: Vec<u64> = out
            .iter()
            .filter(|i| !i.is_marker())
            .map(|i| i.value())
            .collect();
        assert_eq!(values, row);
        assert!(out.last().unwrap().is_marker());
    }

    #[test]
    fn word_accounting_balances() {
        let mut img = MemoryImage::new();
        let offsets = img.alloc_u64s("offsets", &[0, 3, 5], DataClass::AdjacencyMatrix);
        let rows = img.alloc_u32s("rows", &[1, 2, 3, 4, 5], DataClass::AdjacencyMatrix);
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(16);
        let q2 = b.queue(32);
        b.operator(
            OperatorKind::RangeFetch {
                base: offsets,
                idx_bytes: 8,
                elem_bytes: 8,
                input: RangeInput::Pairs,
                marker: None,
                class: DataClass::AdjacencyMatrix,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::RangeFetch {
                base: rows,
                idx_bytes: 8,
                elem_bytes: 4,
                input: RangeInput::Consecutive,
                marker: Some(7),
                class: DataClass::AdjacencyMatrix,
            },
            q1,
            vec![q2],
        );
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        let mut enq = 0u32;
        enq += eng.enqueue_value(q0, 0, 8) as u32;
        enq += eng.enqueue_value(q0, 3, 8) as u32;
        eng.run(&mut img);
        let firings = eng.take_firings();
        // Operator 0 consumed exactly the core enqueue quarters.
        let consumed0: u32 = firings[0].iter().map(|f| f.consumed_q as u32).sum();
        assert_eq!(consumed0, enq);
        // Operator 1 consumed exactly what operator 0 produced.
        let produced0: u32 = firings[0].iter().map(|f| f.produced_q as u32).sum();
        let consumed1: u32 = firings[1].iter().map(|f| f.consumed_q as u32).sum();
        assert_eq!(produced0, consumed1);
        // The core-facing queue holds exactly what operator 1 produced.
        let produced1: u32 = firings[1].iter().map(|f| f.produced_q as u32).sum();
        let out: u32 = eng
            .drain_output_costed(q2)
            .iter()
            .map(|&(_, c)| c as u32)
            .sum();
        assert_eq!(produced1, out);
    }

    #[test]
    fn empty_range_consumes_input() {
        let mut img = MemoryImage::new();
        let arr = img.alloc_u32s("arr", &[1, 2, 3], DataClass::Other);
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(8);
        let q1 = b.queue(8);
        b.operator(
            OperatorKind::RangeFetch {
                base: arr,
                idx_bytes: 8,
                elem_bytes: 4,
                input: RangeInput::Pairs,
                marker: None,
                class: DataClass::Other,
            },
            q0,
            vec![q1],
        );
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        eng.enqueue_value(q0, 2, 8);
        eng.enqueue_value(q0, 2, 8);
        eng.run(&mut img);
        assert!(eng.drain_output(q1).is_empty());
        let firings = eng.take_firings();
        let consumed: u32 = firings[0].iter().map(|f| f.consumed_q as u32).sum();
        assert_eq!(consumed, 16);
    }
}
