//! Textual form of the Dataflow Configuration Language.
//!
//! The paper presents DCL programs as operator graphs (Figs. 2, 3, 5, 6,
//! 11, 13, 14); this module gives them a concrete, writable syntax so that
//! pipelines can be authored, printed, and round-tripped:
//!
//! ```text
//! # Fig. 2: CSR traversal
//! queue input 16
//! queue offs 32
//! queue rows 64
//! range input -> offs   base=offsets idx=8 elem=8 mode=pairs class=adj
//! range offs  -> rows   base=rows    idx=8 elem=4 mode=consecutive marker=0 class=adj
//! ```
//!
//! Base addresses are symbolic, resolved against a caller-provided symbol
//! table (or written as numeric literals). Output lists use `,` for
//! fan-out and `_` for none (prefetch-only operators).

use crate::dcl::{
    MemQueueMode, OperatorKind, Pipeline, PipelineBuilder, RangeInput, ValidateError,
};
use spzip_compress::CodecKind;
use spzip_mem::DataClass;
use std::collections::HashMap;
use std::fmt;

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    detail: String,
}

impl ParseError {
    fn new(line: usize, detail: impl Into<String>) -> Self {
        ParseError {
            line,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DCL parse error at line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseError {}

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> Self {
        // Surface the first error with its source span; parse() records the
        // declaration line of every queue and operator in the builder.
        let first = e.first_error();
        ParseError::new(
            first.line.unwrap_or(0) as usize,
            format!("[{}] {}", first.code, first.message),
        )
    }
}

/// Parses a textual DCL program against `symbols` (name → address).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown symbols or queues, or
/// structural validation failures.
///
/// # Examples
///
/// ```
/// use spzip_core::parser::parse;
/// use std::collections::HashMap;
///
/// let mut syms = HashMap::new();
/// syms.insert("offsets".to_string(), 0x1000u64);
/// syms.insert("rows".to_string(), 0x2000u64);
/// let text = "
///     queue input 16
///     queue offs 32
///     queue rows 64
///     range input -> offs base=offsets idx=8 elem=8 mode=pairs class=adj
///     range offs -> rows base=rows idx=8 elem=4 mode=consecutive marker=0 class=adj
/// ";
/// let p = parse(text, &syms).unwrap();
/// assert_eq!(p.operators().len(), 2);
/// ```
pub fn parse(text: &str, symbols: &HashMap<String, u64>) -> Result<Pipeline, ParseError> {
    let mut builder = PipelineBuilder::new();
    let mut queue_ids: HashMap<String, u8> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap();
        if head == "queue" {
            let name = tokens
                .next()
                .ok_or_else(|| ParseError::new(lineno, "queue needs a name"))?;
            let cap: u16 = tokens
                .next()
                .ok_or_else(|| ParseError::new(lineno, "queue needs a capacity"))?
                .parse()
                .map_err(|_| ParseError::new(lineno, "bad queue capacity"))?;
            if queue_ids.contains_key(name) {
                return Err(ParseError::new(lineno, format!("duplicate queue '{name}'")));
            }
            let id = builder.queue_at(cap, lineno as u32);
            queue_ids.insert(name.to_string(), id);
            continue;
        }
        // Operator line: <op> <in> -> <outs> k=v ...
        let input_name = tokens
            .next()
            .ok_or_else(|| ParseError::new(lineno, "operator needs an input queue"))?;
        let arrow = tokens.next();
        if arrow != Some("->") {
            return Err(ParseError::new(lineno, "expected '->' after input queue"));
        }
        let outs_tok = tokens
            .next()
            .ok_or_else(|| ParseError::new(lineno, "operator needs an output list (or _)"))?;
        let lookup = |name: &str| -> Result<u8, ParseError> {
            queue_ids
                .get(name)
                .copied()
                .ok_or_else(|| ParseError::new(lineno, format!("unknown queue '{name}'")))
        };
        let input = lookup(input_name)?;
        let outputs: Vec<u8> = if outs_tok == "_" {
            Vec::new()
        } else {
            outs_tok
                .split(',')
                .map(lookup)
                .collect::<Result<Vec<_>, _>>()?
        };
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| ParseError::new(lineno, format!("expected key=value, got '{t}'")))?;
            kv.insert(k, v);
        }
        let addr = |key: &str| -> Result<u64, ParseError> {
            let v = kv
                .get(key)
                .ok_or_else(|| ParseError::new(lineno, format!("{head} needs {key}=")))?;
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
                    .map_err(|_| ParseError::new(lineno, format!("bad address '{v}'")))
            } else if let Ok(n) = v.parse::<u64>() {
                Ok(n)
            } else {
                symbols
                    .get(*v)
                    .copied()
                    .ok_or_else(|| ParseError::new(lineno, format!("unknown symbol '{v}'")))
            }
        };
        let num = |key: &str, default: Option<u64>| -> Result<u64, ParseError> {
            match kv.get(key) {
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| ParseError::new(lineno, format!("bad number for {key}"))),
                None => {
                    default.ok_or_else(|| ParseError::new(lineno, format!("{head} needs {key}=")))
                }
            }
        };
        let class = match kv.get("class").copied().unwrap_or("other") {
            "adj" => DataClass::AdjacencyMatrix,
            "src" => DataClass::SourceVertex,
            "dst" => DataClass::DestinationVertex,
            "updates" => DataClass::Updates,
            "frontier" => DataClass::Frontier,
            "other" => DataClass::Other,
            other => return Err(ParseError::new(lineno, format!("unknown class '{other}'"))),
        };
        let codec = || -> Result<CodecKind, ParseError> {
            match kv.get("codec").copied().unwrap_or("delta") {
                "delta" => Ok(CodecKind::Delta),
                "bpc32" => Ok(CodecKind::Bpc32),
                "bpc64" => Ok(CodecKind::Bpc64),
                "rle" => Ok(CodecKind::Rle),
                "none" => Ok(CodecKind::None),
                other => Err(ParseError::new(lineno, format!("unknown codec '{other}'"))),
            }
        };
        let kind = match head {
            "range" => OperatorKind::RangeFetch {
                base: addr("base")?,
                idx_bytes: num("idx", Some(8))? as u8,
                elem_bytes: num("elem", Some(4))? as u8,
                input: match kv.get("mode").copied().unwrap_or("pairs") {
                    "pairs" => RangeInput::Pairs,
                    "consecutive" => RangeInput::Consecutive,
                    other => {
                        return Err(ParseError::new(lineno, format!("unknown mode '{other}'")))
                    }
                },
                marker: kv
                    .get("marker")
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| ParseError::new(lineno, "bad marker value"))
                    })
                    .transpose()?,
                class,
            },
            "indirect" => OperatorKind::Indirect {
                base: addr("base")?,
                elem_bytes: num("elem", Some(8))? as u8,
                pair: kv.get("pair").copied() == Some("true"),
                class,
            },
            "decompress" => OperatorKind::Decompress {
                codec: codec()?,
                elem_bytes: num("elem", Some(4))? as u8,
            },
            "compress" => OperatorKind::Compress {
                codec: codec()?,
                elem_bytes: num("elem", Some(4))? as u8,
                sort_chunks: kv.get("sort").copied() == Some("true"),
            },
            "streamwrite" => OperatorKind::StreamWrite {
                base: addr("base")?,
                class,
            },
            "memqueue" => OperatorKind::MemQueue {
                num_queues: num("queues", None)? as u32,
                data_base: addr("base")?,
                stride: num("stride", None)?,
                meta_addr: addr("meta")?,
                chunk_elems: num("chunk", Some(32))? as u32,
                elem_bytes: num("elem", Some(8))? as u8,
                mode: match kv.get("mq").copied().unwrap_or("buffer") {
                    "buffer" => MemQueueMode::Buffer,
                    "append" => MemQueueMode::Append,
                    other => {
                        return Err(ParseError::new(
                            lineno,
                            format!("unknown mq mode '{other}'"),
                        ))
                    }
                },
                class,
            },
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("unknown operator '{other}'"),
                ))
            }
        };
        builder.operator_at(kind, input, outputs, lineno as u32);
    }
    Ok(builder.build()?)
}

/// Pretty-prints a pipeline back to the textual form (addresses as hex
/// literals, queues named `q0..`).
pub fn to_text(pipeline: &Pipeline) -> String {
    let mut out = String::new();
    for (i, q) in pipeline.queues().iter().enumerate() {
        out.push_str(&format!("queue q{i} {}\n", q.capacity_words));
    }
    let class_str = |c: DataClass| match c {
        DataClass::AdjacencyMatrix => "adj",
        DataClass::SourceVertex => "src",
        DataClass::DestinationVertex => "dst",
        DataClass::Updates => "updates",
        DataClass::Frontier => "frontier",
        DataClass::Other => "other",
    };
    for op in pipeline.operators() {
        let outs = if op.outputs.is_empty() {
            "_".to_string()
        } else {
            op.outputs
                .iter()
                .map(|q| format!("q{q}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let head = format!("{} q{} -> {outs}", op.kind.name(), op.input);
        let rest = match &op.kind {
            OperatorKind::RangeFetch { base, idx_bytes, elem_bytes, input, marker, class } => {
                let mut s = format!(
                    "base=0x{base:x} idx={idx_bytes} elem={elem_bytes} mode={} class={}",
                    match input {
                        RangeInput::Pairs => "pairs",
                        RangeInput::Consecutive => "consecutive",
                    },
                    class_str(*class)
                );
                if let Some(m) = marker {
                    s.push_str(&format!(" marker={m}"));
                }
                s
            }
            OperatorKind::Indirect { base, elem_bytes, pair, class } => {
                format!("base=0x{base:x} elem={elem_bytes} pair={pair} class={}", class_str(*class))
            }
            OperatorKind::Decompress { codec, elem_bytes } => {
                format!("codec={codec} elem={elem_bytes}")
            }
            OperatorKind::Compress { codec, elem_bytes, sort_chunks } => {
                format!("codec={codec} elem={elem_bytes} sort={sort_chunks}")
            }
            OperatorKind::StreamWrite { base, class } => {
                format!("base=0x{base:x} class={}", class_str(*class))
            }
            OperatorKind::MemQueue {
                num_queues,
                data_base,
                stride,
                meta_addr,
                chunk_elems,
                elem_bytes,
                mode,
                class,
            } => format!(
                "queues={num_queues} base=0x{data_base:x} stride={stride} meta=0x{meta_addr:x} chunk={chunk_elems} elem={elem_bytes} mq={} class={}",
                match mode {
                    MemQueueMode::Buffer => "buffer",
                    MemQueueMode::Append => "append",
                },
                class_str(*class)
            ),
        };
        out.push_str(&format!("{head} {rest}\n"));
    }
    out
}

/// Renders a pipeline as a Graphviz `dot` digraph, in the visual style of
/// the paper's pipeline figures: one node per operator, one labeled edge
/// per queue, diamond nodes for the core-facing endpoints.
pub fn to_dot(pipeline: &Pipeline) -> String {
    to_dot_with(pipeline, &|q| format!("q{q}"))
}

/// [`to_dot`] with a caller-supplied edge label per queue — used by
/// [`shape::annotated_dot`](crate::shape::annotated_dot) to annotate each
/// edge with its inferred shape domain.
pub fn to_dot_with(pipeline: &Pipeline, edge_label: &dyn Fn(crate::QueueId) -> String) -> String {
    let mut out = String::from("digraph dcl {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, op) in pipeline.operators().iter().enumerate() {
        out.push_str(&format!("  op{i} [label=\"{}\"];\n", op.kind.name()));
    }
    for q in pipeline.core_input_queues() {
        out.push_str(&format!("  in{q} [label=\"core q{q}\", shape=diamond];\n"));
    }
    for q in pipeline.core_output_queues() {
        out.push_str(&format!("  out{q} [label=\"core q{q}\", shape=diamond];\n"));
    }
    let producer_of = |q: crate::QueueId| {
        pipeline
            .operators()
            .iter()
            .position(|op| op.outputs.contains(&q))
    };
    for (i, op) in pipeline.operators().iter().enumerate() {
        let label = edge_label(op.input);
        match producer_of(op.input) {
            Some(p) => out.push_str(&format!("  op{p} -> op{i} [label=\"{label}\"];\n")),
            None => out.push_str(&format!(
                "  in{0} -> op{i} [label=\"{label}\"];\n",
                op.input
            )),
        }
    }
    for q in pipeline.core_output_queues() {
        if let Some(p) = producer_of(q) {
            out.push_str(&format!(
                "  op{p} -> out{q} [label=\"{}\"];\n",
                edge_label(q)
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> HashMap<String, u64> {
        let mut m = HashMap::new();
        m.insert("offsets".to_string(), 0x1000);
        m.insert("rows".to_string(), 0x2000);
        m.insert("bins".to_string(), 0x8000);
        m.insert("meta".to_string(), 0x9000);
        m
    }

    #[test]
    fn parses_fig2() {
        let text = "
            # Fig. 2
            queue input 16
            queue offs 32
            queue rows 64
            range input -> offs base=offsets idx=8 elem=8 mode=pairs class=adj
            range offs -> rows base=rows idx=8 elem=4 mode=consecutive marker=0 class=adj
        ";
        let p = parse(text, &syms()).unwrap();
        assert_eq!(p.operators().len(), 2);
        assert_eq!(p.core_output_queues(), vec![2]);
    }

    #[test]
    fn parses_every_operator_and_roundtrips() {
        let text = "
            queue a 8
            queue b 8
            queue c 8
            queue d 8
            queue e 8
            queue f 8
            queue g 8
            range a -> b base=0x1000 idx=8 elem=1 mode=pairs marker=3 class=adj
            decompress b -> c codec=delta elem=4
            indirect c -> d base=rows elem=8 class=dst
            compress d -> e codec=bpc64 elem=8 sort=true
            streamwrite e -> _ base=0x7000 class=updates
            memqueue f -> g queues=4 base=bins stride=4096 meta=meta chunk=32 elem=8 mq=buffer class=updates
        ";
        let p = parse(text, &syms()).unwrap();
        assert_eq!(p.operators().len(), 6);
        let printed = to_text(&p);
        let reparsed = parse(&printed, &HashMap::new()).unwrap();
        assert_eq!(p, reparsed, "round-trip through text");
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("queue a 8\nbogus a -> a", &syms()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_queue_is_an_error() {
        let err = parse("queue a 8\nrange a -> zz base=0x0", &syms()).unwrap_err();
        assert!(err.to_string().contains("unknown queue"));
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let err = parse("queue a 8\nqueue b 8\nrange a -> b base=nope", &syms()).unwrap_err();
        assert!(err.to_string().contains("unknown symbol"));
    }

    #[test]
    fn structural_validation_propagates() {
        // Two consumers of queue a.
        let text = "
            queue a 8
            queue b 8
            queue c 8
            range a -> b base=0x0
            range a -> c base=0x0
        ";
        let err = parse(text, &syms()).unwrap_err();
        assert!(err.to_string().contains("consumers"));
    }

    #[test]
    fn undersized_queue_is_rejected_with_code_and_span() {
        // Queue b (4 words = 16 quarters) cannot hold one 32-quarter fetch
        // burst: the build must fail with E013 pointing at b's declaration
        // line instead of producing a program that wedges the engine.
        let text = "queue a 8\nqueue b 4\nrange a -> b base=0x0 elem=8";
        let err = parse(text, &syms()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("[E013]"), "{s}");
        assert!(s.contains("line 2"), "{s}");
    }

    #[test]
    fn duplicate_queue_is_an_error() {
        let err = parse("queue a 8\nqueue a 8", &syms()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn dot_export_covers_operators_queues_and_endpoints() {
        let text = "
            queue input 16
            queue offs 32
            queue rows 64
            range input -> offs base=offsets idx=8 elem=8 mode=pairs class=adj
            range offs -> rows base=rows idx=8 elem=4 mode=consecutive marker=0 class=adj
        ";
        let p = parse(text, &syms()).unwrap();
        let dot = to_dot(&p);
        assert!(dot.starts_with("digraph dcl {"));
        assert!(dot.contains("op0 [label=\"range\"]"));
        assert!(dot.contains("in0 -> op0"));
        assert!(dot.contains("op0 -> op1 [label=\"q1\"]"));
        assert!(dot.contains("op1 -> out2"));
        assert_eq!(dot.matches("diamond").count(), 2);
    }

    #[test]
    fn defaults_apply() {
        let p = parse(
            "queue a 8\nqueue b 8\nrange a -> b base=0x40",
            &HashMap::new(),
        )
        .unwrap();
        match &p.operators()[0].kind {
            OperatorKind::RangeFetch {
                idx_bytes,
                elem_bytes,
                input,
                marker,
                ..
            } => {
                assert_eq!(*idx_bytes, 8);
                assert_eq!(*elem_bytes, 4);
                assert_eq!(*input, RangeInput::Pairs);
                assert_eq!(*marker, None);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }
}
