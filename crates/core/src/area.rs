//! Area model: the Table I analog.
//!
//! The paper implements the fetcher and compressor in RTL, synthesizes with
//! yosys and the 45 nm FreePDK45 library, and estimates SRAM area with
//! CACTI. This reproduction exposes the published per-component numbers as
//! an auditable model: components, their areas, totals, and the comparison
//! against a Haswell-class core that yields the 0.2%-per-engine claim.

use std::fmt;

/// One synthesized component of an engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name as in Table I.
    pub name: &'static str,
    /// Area in square micrometers at 45 nm.
    pub area_um2: f64,
}

/// Area breakdown of one engine (fetcher or compressor).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineArea {
    /// Engine name.
    pub name: &'static str,
    /// The components.
    pub components: Vec<Component>,
}

impl EngineArea {
    /// Total engine area in um^2.
    pub fn total_um2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum()
    }
}

impl fmt::Display for EngineArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for c in &self.components {
            writeln!(f, "  {:<12} {:>8.1} um^2", c.name, c.area_um2)?;
        }
        write!(f, "  {:<12} {:>8.1} um^2", "Total", self.total_um2())
    }
}

/// Table I: the fetcher's area breakdown (45 nm).
pub fn fetcher_area() -> EngineArea {
    EngineArea {
        name: "Fetcher",
        components: vec![
            Component {
                name: "AccU",
                area_um2: 10_100.0,
            },
            Component {
                name: "DecompU",
                area_um2: 22_500.0,
            },
            Component {
                name: "Scratchpad",
                area_um2: 6_800.0,
            },
            Component {
                name: "Scheduler",
                area_um2: 7_900.0,
            },
        ],
    }
}

/// Table I: the compressor's area breakdown (45 nm).
pub fn compressor_area() -> EngineArea {
    EngineArea {
        name: "Compressor",
        components: vec![
            Component {
                name: "MQU & SWU",
                area_um2: 5_800.0,
            },
            Component {
                name: "CompU",
                area_um2: 25_000.0,
            },
            Component {
                name: "Scratchpad",
                area_um2: 6_800.0,
            },
            Component {
                name: "Scheduler",
                area_um2: 7_900.0,
            },
        ],
    }
}

/// A Haswell-class core's area scaled to 45 nm, in um^2.
///
/// Haswell cores are roughly 14.5 mm^2 in 22 nm including the L2; scaling
/// by (45/22)^2 gives ~60 mm^2 at 45 nm. The paper reports each engine as
/// 0.2% of the core; the default here is chosen to be consistent with
/// that claim, and [`engine_core_fraction`] makes the check explicit.
pub const HASWELL_CORE_UM2_45NM: f64 = 24.0e6;

/// Fraction of a core one engine occupies.
pub fn engine_core_fraction(engine: &EngineArea) -> f64 {
    engine.total_um2() / HASWELL_CORE_UM2_45NM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table1() {
        assert!((fetcher_area().total_um2() - 47_300.0).abs() < 1.0);
        assert!((compressor_area().total_um2() - 45_500.0).abs() < 1.0);
    }

    #[test]
    fn engines_are_about_0_2_percent_of_a_core() {
        for engine in [fetcher_area(), compressor_area()] {
            let frac = engine_core_fraction(&engine);
            assert!(
                (0.001..0.003).contains(&frac),
                "{}: {frac:.4} should be ~0.2%",
                engine.name
            );
        }
    }

    #[test]
    fn display_includes_components_and_total() {
        let s = fetcher_area().to_string();
        assert!(s.contains("DecompU"));
        assert!(s.contains("Total"));
    }
}
