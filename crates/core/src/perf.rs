//! Static traffic and throughput analysis over DCL pipelines (P-codes).
//!
//! Where [`crate::lint`] answers "is this program well-formed and
//! deadlock-free?", this module answers "how will it perform?" — without
//! running the timing simulator. The analyzer propagates a steady-state
//! *flow* (items, payload bytes, chunk markers per unit of core-side work)
//! through the acyclic operator graph, charges each operator its analytical
//! memory footprint and firing count, and compares the engine's service
//! rate against the DRAM bandwidth the footprint implies. The result is a
//! [`PerfReport`]: per-operator footprints, per-class byte totals, the
//! predicted binding resource, and `P0xx` diagnostics rendered through the
//! same machinery as the linter's `E`/`W` codes.
//!
//! Codec behaviour comes from the analytical ratio models in
//! [`spzip_compress::model`], so a change to a wire format shows up here
//! (and in the `dcl-perf` cross-check gate) without re-measuring anything.
//!
//! Everything is per *unit*: one range / one chunk of work entering each
//! core-input queue. Ratios — bytes per delivered element, service versus
//! DRAM cycles, marker share of a queue — are scale-free, which is all the
//! P-code rules need.

use crate::dcl::{MemQueueMode, OperatorKind, Pipeline, RangeInput, DEFAULT_SCRATCHPAD_BYTES};
use crate::func::FIRE_BYTES;
use crate::lint::{Code, Diagnostic, Site};
use crate::QueueId;
use spzip_compress::model::{predicted_bytes_per_elem, RateTable, StreamProfile};
use spzip_mem::DataClass;
use std::collections::BTreeMap;

/// Version of the analytical performance model. Folded into the bench
/// cache fingerprint so cached cells invalidate when the model changes.
pub const PERF_VERSION: u32 = 1;

/// Quarter-words a chunk marker occupies in a queue (engine encoding).
const MARKER_QUARTERS: f64 = 4.0;

/// Machine parameters and P-rule thresholds for the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfParams {
    /// DRAM bandwidth in bytes per core cycle (paper machine: 12.8 GB/s
    /// per channel-slice at 3.5 GHz).
    pub dram_bytes_per_cycle: f64,
    /// Cache line size in bytes; partial-line accesses round up to this.
    pub line_bytes: f64,
    /// Expected extra DRAM bytes per `indirect` gather, as a fraction of a
    /// line. Gathers index vertex-sized arrays that stay largely
    /// cache-resident (that is the point of prefetching them), so only a
    /// fraction of each touched line is charged to memory.
    pub gather_line_fraction: f64,
    /// Engine scratchpad budget the queues are scaled into.
    pub scratchpad_bytes: u32,
    /// Extra cycles a (de)compression firing spends in the transform unit.
    pub transform_latency: f64,
    /// Software-traversal cost a fetcher must beat (cycles per delivered
    /// element) before `P003` fires.
    pub sw_cycles_per_elem: f64,
    /// A compressor whose predicted output exceeds `inflation_margin ×
    /// elem_bytes` per element triggers `P002`.
    pub inflation_margin: f64,
    /// `P004` fires when predicted service cycles exceed this multiple of
    /// the DRAM cycles on a memory-touching pipeline.
    pub service_dram_margin: f64,
    /// `P005` fires when markers exceed this share of a queue's quarters.
    pub marker_overhead_threshold: f64,
    /// Per-codec transform throughput calibration. The nominal table
    /// scales every codec by 1.0, leaving the model exactly as
    /// uncalibrated; `dcl-perf --suggest` loads measured kernel rates
    /// from `BENCH_codecs.json` here.
    pub rates: RateTable,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            dram_bytes_per_cycle: 12.8e9 / 3.5e9,
            line_bytes: 64.0,
            gather_line_fraction: 0.125,
            scratchpad_bytes: DEFAULT_SCRATCHPAD_BYTES,
            transform_latency: 2.0,
            sw_cycles_per_elem: 5.0,
            inflation_margin: 1.05,
            service_dram_margin: 2.0,
            marker_overhead_threshold: 0.5,
            rates: RateTable::nominal(),
        }
    }
}

/// A pipeline plus everything the analyzer is allowed to assume about its
/// inputs: machine parameters, expected elements per fetched range, and
/// value-distribution profiles for codec operators.
#[derive(Debug, Clone)]
pub struct PerfInput<'a> {
    /// The validated program under analysis.
    pub pipeline: &'a Pipeline,
    /// Machine parameters and rule thresholds.
    pub params: PerfParams,
    /// Expected elements per range for `range`/`indirect` operators with
    /// no per-operator override (graph workloads: average group size).
    pub default_range_elems: f64,
    /// Per-operator override of `default_range_elems`.
    pub range_elems: BTreeMap<usize, f64>,
    /// Per-operator value profile for `compress`/`decompress` operators;
    /// defaults to [`StreamProfile::default_for`] the operator's width.
    pub profiles: BTreeMap<usize, StreamProfile>,
}

impl<'a> PerfInput<'a> {
    /// Default assumptions for `pipeline`: paper machine parameters,
    /// 32-element ranges, and graph-typical value profiles.
    pub fn new(pipeline: &'a Pipeline) -> Self {
        PerfInput {
            pipeline,
            params: PerfParams::default(),
            default_range_elems: 32.0,
            range_elems: BTreeMap::new(),
            profiles: BTreeMap::new(),
        }
    }

    fn range_elems_for(&self, op: usize) -> f64 {
        *self
            .range_elems
            .get(&op)
            .unwrap_or(&self.default_range_elems)
    }

    fn profile_for(&self, op: usize, elem_bytes: u8) -> StreamProfile {
        self.profiles
            .get(&op)
            .cloned()
            .unwrap_or_else(|| StreamProfile::default_for(elem_bytes))
    }
}

/// Steady-state flow through one queue, per unit of core-side work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Flow {
    /// Queue items (values or raw bytes, whichever the stream carries).
    items: f64,
    /// Payload bytes (= payload quarters; a quarter-word is one byte).
    bytes: f64,
    /// Chunk markers.
    markers: f64,
}

/// Analytical footprint and service demand of one operator, per unit.
#[derive(Debug, Clone, PartialEq)]
pub struct OpPerf {
    /// Operator definition index.
    pub index: usize,
    /// Operator kind name (`range`, `compress`, ...).
    pub name: &'static str,
    /// Items consumed from the input queue.
    pub items_in: f64,
    /// Payload bytes consumed.
    pub bytes_in: f64,
    /// Items emitted to each output queue.
    pub items_out: f64,
    /// Payload bytes emitted to each output queue.
    pub bytes_out: f64,
    /// Memory bytes read (line-rounding overhead included).
    pub mem_read: f64,
    /// Memory bytes written.
    pub mem_write: f64,
    /// Traffic class of the memory traffic, when the operator has one.
    pub class: Option<DataClass>,
    /// Predicted firings.
    pub firings: f64,
    /// Predicted engine-issue cycles (firings plus transform latency).
    pub service_cycles: f64,
}

/// The resource predicted to bound steady-state throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingResource {
    /// Memory bandwidth: the footprint outweighs the engine's issue rate.
    DramBandwidth,
    /// One operator's service rate dominates (its definition index).
    OperatorService(usize),
    /// A queue too small to cover burst + demand serializes its edge (the
    /// `P001` condition); index of the worst queue.
    QueueCapacity(QueueId),
}

/// Everything the analyzer predicts about one pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Per-operator footprints, in definition order.
    pub ops: Vec<OpPerf>,
    /// Memory bytes read per unit, by [`DataClass::index`].
    pub read_bytes: [f64; 6],
    /// Memory bytes written per unit, by [`DataClass::index`].
    pub write_bytes: [f64; 6],
    /// Items per unit arriving at core-output queues.
    pub delivered_elems: f64,
    /// Engine-issue cycles per unit (sum over operators).
    pub service_cycles: f64,
    /// DRAM-transfer cycles per unit implied by the footprint.
    pub dram_cycles: f64,
    /// Predicted binding resource.
    pub binding: BindingResource,
    /// `P0xx` findings, in operator/queue order.
    pub diagnostics: Vec<Diagnostic>,
}

impl PerfReport {
    /// Predicted steady-state cycles per unit: the slower of the engine's
    /// issue rate and the DRAM transfer time.
    pub fn cycles_per_unit(&self) -> f64 {
        self.service_cycles.max(self.dram_cycles)
    }

    /// Total memory bytes moved per unit, reads plus writes.
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes.iter().sum::<f64>() + self.write_bytes.iter().sum::<f64>()
    }
}

/// Runs the static performance analysis.
///
/// Flows are propagated in topological order (the single-producer,
/// acyclic queue graph makes the order unique up to ties), each operator
/// is charged its analytical footprint, and the P-rules are evaluated on
/// the steady state. Never emits `E0xx`/`W0xx` — run [`crate::lint::lint`]
/// for those.
pub fn analyze(input: &PerfInput<'_>) -> PerfReport {
    let p = input.pipeline;
    let params = &input.params;
    let nq = p.queues().len();
    let ops = p.operators();

    // --- seed core-input queues with one unit of work each -------------
    let mut flows: Vec<Option<Flow>> = vec![None; nq];
    for q in p.core_input_queues() {
        let consumer = ops.iter().enumerate().find(|(_, op)| op.input == q);
        let flow = match consumer.map(|(i, op)| (i, &op.kind)) {
            Some((
                _,
                OperatorKind::RangeFetch {
                    idx_bytes,
                    input: ri,
                    ..
                },
            )) => {
                let items = if *ri == RangeInput::Pairs { 2.0 } else { 1.0 };
                Flow {
                    items,
                    bytes: items * f64::from(*idx_bytes),
                    markers: 0.0,
                }
            }
            Some((i, OperatorKind::Indirect { .. })) => {
                let n = input.range_elems_for(i);
                Flow {
                    items: n,
                    bytes: n * 4.0,
                    markers: 0.0,
                }
            }
            Some((_, OperatorKind::Compress { elem_bytes, .. })) => Flow {
                items: 32.0,
                bytes: 32.0 * f64::from(*elem_bytes),
                markers: 1.0,
            },
            Some((
                _,
                OperatorKind::MemQueue {
                    chunk_elems,
                    elem_bytes,
                    mode: MemQueueMode::Buffer,
                    ..
                },
            )) => Flow {
                // (queue-id, payload) pairs; one emitted chunk per unit.
                items: 2.0 * f64::from(*chunk_elems),
                bytes: f64::from(*chunk_elems) * (4.0 + f64::from(*elem_bytes)),
                markers: 0.0,
            },
            // Byte-stream consumers (decompress, streamwrite, append
            // MQUs) and unconsumed queues: one firing's worth of bytes.
            _ => Flow {
                items: FIRE_BYTES as f64,
                bytes: FIRE_BYTES as f64,
                markers: 1.0,
            },
        };
        flows[q as usize] = Some(flow);
    }

    // --- propagate flows in topological order --------------------------
    let mut op_perf: Vec<Option<OpPerf>> = vec![None; ops.len()];
    let mut remaining: Vec<usize> = (0..ops.len()).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&i| {
            let op = &ops[i];
            let Some(inflow) = flows[op.input as usize] else {
                return true; // producer not yet processed
            };
            let perf = eval_op(input, i, &op.kind, inflow);
            let outflow = Flow {
                items: perf.items_out,
                bytes: perf.bytes_out,
                markers: out_markers(&op.kind, inflow),
            };
            for &oq in &op.outputs {
                flows[oq as usize] = Some(outflow);
            }
            op_perf[i] = Some(perf);
            false
        });
        // A validated pipeline is acyclic, so every pass makes progress.
        assert!(remaining.len() < before, "cycle in validated pipeline");
    }
    let op_perf: Vec<OpPerf> = op_perf.into_iter().map(|o| o.expect("processed")).collect();

    // --- aggregate ------------------------------------------------------
    let mut read_bytes = [0.0f64; 6];
    let mut write_bytes = [0.0f64; 6];
    for perf in &op_perf {
        let class = perf.class.unwrap_or(DataClass::Other);
        read_bytes[class.index()] += perf.mem_read;
        write_bytes[class.index()] += perf.mem_write;
    }
    let service_cycles: f64 = op_perf.iter().map(|o| o.service_cycles).sum();
    let total_bytes: f64 = read_bytes.iter().sum::<f64>() + write_bytes.iter().sum::<f64>();
    let dram_cycles = total_bytes / params.dram_bytes_per_cycle;
    let delivered_elems: f64 = p
        .core_output_queues()
        .iter()
        .filter_map(|&q| flows[q as usize])
        .map(|f| f.items)
        .sum();

    // --- P-rules --------------------------------------------------------
    let mut diagnostics = Vec::new();
    let worst_queue = check_queues(input, &flows, &mut diagnostics);
    check_operators(input, &op_perf, &mut diagnostics);
    check_pipeline(
        input,
        &op_perf,
        delivered_elems,
        service_cycles,
        dram_cycles,
        &mut diagnostics,
    );

    let binding = if let Some(q) = worst_queue {
        BindingResource::QueueCapacity(q)
    } else if service_cycles > dram_cycles {
        let max_op = op_perf
            .iter()
            .max_by(|a, b| a.service_cycles.total_cmp(&b.service_cycles))
            .map_or(0, |o| o.index);
        BindingResource::OperatorService(max_op)
    } else {
        BindingResource::DramBandwidth
    };

    PerfReport {
        ops: op_perf,
        read_bytes,
        write_bytes,
        delivered_elems,
        service_cycles,
        dram_cycles,
        binding,
        diagnostics,
    }
}

/// Markers an operator forwards downstream, given its input flow.
fn out_markers(kind: &OperatorKind, inflow: Flow) -> f64 {
    match kind {
        OperatorKind::RangeFetch { marker, input, .. } => {
            if marker.is_some() {
                ranges_in(*input, inflow)
            } else {
                0.0
            }
        }
        OperatorKind::Indirect { .. } => 0.0,
        // Transforms re-chunk on the same marker boundaries.
        OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => inflow.markers,
        OperatorKind::StreamWrite { .. } => 0.0,
        OperatorKind::MemQueue {
            chunk_elems, mode, ..
        } => match mode {
            MemQueueMode::Buffer => (inflow.items / 2.0) / f64::from(*chunk_elems).max(1.0),
            MemQueueMode::Append => 0.0,
        },
    }
}

fn ranges_in(input: RangeInput, inflow: Flow) -> f64 {
    match input {
        RangeInput::Pairs => inflow.items / 2.0,
        RangeInput::Consecutive => inflow.items,
    }
}

/// Evaluates one operator: output flow, memory footprint, service demand.
fn eval_op(input: &PerfInput<'_>, index: usize, kind: &OperatorKind, inflow: Flow) -> OpPerf {
    let params = &input.params;
    let fire = FIRE_BYTES as f64;
    let mut perf = OpPerf {
        index,
        name: kind.name(),
        items_in: inflow.items,
        bytes_in: inflow.bytes,
        items_out: 0.0,
        bytes_out: 0.0,
        mem_read: 0.0,
        mem_write: 0.0,
        class: None,
        firings: 0.0,
        service_cycles: 0.0,
    };
    match kind {
        OperatorKind::RangeFetch {
            elem_bytes,
            input: ri,
            class,
            ..
        } => {
            let ranges = ranges_in(*ri, inflow);
            let elems = ranges * input.range_elems_for(index);
            let useful = elems * f64::from(*elem_bytes);
            // Each range starts and ends mid-line on average: half a line
            // of rounding per boundary pair.
            perf.items_out = elems;
            perf.bytes_out = useful;
            perf.mem_read = useful + ranges * params.line_bytes / 2.0;
            perf.class = Some(*class);
            perf.firings = useful / fire + ranges;
            perf.service_cycles = perf.firings;
        }
        OperatorKind::Indirect {
            elem_bytes,
            pair,
            class,
            ..
        } => {
            let accesses = inflow.items;
            let per = if *pair { 2.0 } else { 1.0 };
            let useful = accesses * per * f64::from(*elem_bytes);
            // Gathers land on scattered lines, but in largely
            // cache-resident vertex arrays: charge a calibrated fraction
            // of a line per access.
            perf.items_out = accesses * per;
            perf.bytes_out = useful;
            perf.mem_read = useful + accesses * params.line_bytes * params.gather_line_fraction;
            perf.class = Some(*class);
            perf.firings = accesses;
            perf.service_cycles = perf.firings;
        }
        OperatorKind::Decompress { codec, elem_bytes } => {
            let profile = input.profile_for(index, *elem_bytes);
            let bpe = predicted_bytes_per_elem(*codec, &profile);
            let elems = inflow.bytes / bpe.max(f64::MIN_POSITIVE);
            perf.items_out = elems;
            perf.bytes_out = elems * f64::from(*elem_bytes);
            perf.firings = inflow.bytes.max(perf.bytes_out) / fire + inflow.markers;
            // A slower-than-nominal codec (measured, relative to the
            // fastest in the rate table) stretches each firing.
            perf.service_cycles = perf.firings / params.rates.decode_scale(*codec)
                + inflow.markers * params.transform_latency;
        }
        OperatorKind::Compress {
            codec, elem_bytes, ..
        } => {
            let profile = input.profile_for(index, *elem_bytes);
            let bpe = predicted_bytes_per_elem(*codec, &profile);
            let out = inflow.items * bpe;
            perf.items_out = out; // a byte stream: one item per byte
            perf.bytes_out = out;
            perf.firings = inflow.bytes.max(out) / fire + inflow.markers;
            perf.service_cycles = perf.firings / params.rates.encode_scale(*codec)
                + inflow.markers * params.transform_latency;
        }
        OperatorKind::StreamWrite { class, .. } => {
            perf.mem_write = inflow.bytes;
            perf.class = Some(*class);
            perf.firings = inflow.bytes / fire;
            perf.service_cycles = perf.firings;
        }
        OperatorKind::MemQueue {
            chunk_elems,
            elem_bytes,
            mode,
            class,
            ..
        } => match mode {
            MemQueueMode::Buffer => {
                // Input is (queue-id, payload) pairs: stage each payload
                // in memory, read full chunks back on flush.
                let updates = inflow.items / 2.0;
                let stored = updates * f64::from(*elem_bytes);
                perf.items_out = updates;
                perf.bytes_out = stored;
                perf.mem_write = stored;
                perf.mem_read = stored;
                perf.class = Some(*class);
                let chunks = updates / f64::from(*chunk_elems).max(1.0);
                perf.firings = updates + stored / fire + chunks;
                perf.service_cycles = perf.firings;
            }
            MemQueueMode::Append => {
                // Append raw chunk bytes; one 8 B tail-pointer store per
                // marker-delimited chunk.
                perf.mem_write = inflow.bytes + inflow.markers * 8.0;
                perf.class = Some(*class);
                perf.firings = inflow.bytes / fire + inflow.markers;
                perf.service_cycles = perf.firings;
            }
        },
    }
    perf
}

/// Per-queue rules: `P001` (capacity slack) and `P005` (marker share).
/// Returns the worst `P001` queue, if any.
fn check_queues(
    input: &PerfInput<'_>,
    flows: &[Option<Flow>],
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<QueueId> {
    let p = input.pipeline;
    let params = &input.params;
    let declared: u32 = p.scratchpad_words();
    let budget_words = f64::from(params.scratchpad_bytes / 4);
    let scale = budget_words / f64::from(declared.max(1));
    let mut worst: Option<(f64, QueueId)> = None;

    for (qi, q) in p.queues().iter().enumerate() {
        let qid = qi as QueueId;
        let line = p.queue_lines()[qi];
        // P001: the engine rescues any queue scaled below 16 words with a
        // hard floor, but a queue that *needs* the rescue steals
        // scratchpad from its siblings and serializes its edge. Compare
        // the pre-floor scaled capacity against producer burst plus
        // consumer demand.
        let scaled_q = f64::from(q.capacity_words) * scale * 4.0;
        let burst = producer_burst_quarters(p, qid);
        let demand = consumer_demand_quarters(p, qid);
        if scaled_q < burst + demand {
            let ratio = scaled_q / (burst + demand).max(1.0);
            if worst.is_none_or(|(r, _)| ratio < r) {
                worst = Some((ratio, qid));
            }
            diagnostics.push(
                Diagnostic::new(
                    Code::P001,
                    Site::Queue(qid),
                    line,
                    format!(
                        "queue q{qid} scales to {scaled_q:.0} quarters in a \
                         {} B scratchpad, below its producer burst ({burst:.0}) \
                         plus consumer demand ({demand:.0})",
                        params.scratchpad_bytes
                    ),
                )
                .hint(format!(
                    "rebalance declared capacities: q{qid} will run at the \
                     16-word floor and serialize its edge"
                )),
            );
        }
        // P005: markers are overhead; a queue moving mostly markers wastes
        // its bandwidth on chunk delimiters.
        if let Some(flow) = flows[qi] {
            let marker_q = flow.markers * MARKER_QUARTERS;
            let total_q = marker_q + flow.bytes;
            if total_q > 0.0 && marker_q / total_q > params.marker_overhead_threshold {
                diagnostics.push(
                    Diagnostic::new(
                        Code::P005,
                        Site::Queue(qid),
                        line,
                        format!(
                            "markers are {:.0}% of queue q{qid}'s traffic \
                             ({marker_q:.1} of {total_q:.1} quarters per unit)",
                            100.0 * marker_q / total_q
                        ),
                    )
                    .hint("coarsen the chunking: more elements per marker"),
                );
            }
        }
    }
    worst.map(|(_, q)| q)
}

/// Largest burst (quarters) the producer of `q` can commit atomically.
fn producer_burst_quarters(p: &Pipeline, q: QueueId) -> f64 {
    for op in p.operators() {
        if op.outputs.contains(&q) {
            let fire = FIRE_BYTES as f64;
            return match &op.kind {
                OperatorKind::RangeFetch { marker, .. } => {
                    fire + if marker.is_some() {
                        MARKER_QUARTERS
                    } else {
                        0.0
                    }
                }
                OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => {
                    fire + MARKER_QUARTERS
                }
                OperatorKind::Indirect {
                    elem_bytes, pair, ..
                } => f64::from(*elem_bytes) * if *pair { 2.0 } else { 1.0 },
                OperatorKind::MemQueue { .. } => fire + MARKER_QUARTERS,
                OperatorKind::StreamWrite { .. } => 0.0,
            };
        }
    }
    // Core-produced: one enqueue burst (up to two 64-bit operands).
    16.0
}

/// Quarters the consumer of `q` must see before it can fire.
fn consumer_demand_quarters(p: &Pipeline, q: QueueId) -> f64 {
    for op in p.operators() {
        if op.input == q {
            let fire = FIRE_BYTES as f64;
            return match &op.kind {
                OperatorKind::RangeFetch {
                    idx_bytes, input, ..
                } => {
                    let per = if *input == RangeInput::Pairs {
                        2.0
                    } else {
                        1.0
                    };
                    per * f64::from(*idx_bytes)
                }
                OperatorKind::Indirect { .. } => 8.0,
                OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => fire,
                OperatorKind::StreamWrite { .. } => 1.0,
                OperatorKind::MemQueue {
                    elem_bytes, mode, ..
                } => match mode {
                    MemQueueMode::Buffer => 4.0 + f64::from(*elem_bytes),
                    MemQueueMode::Append => 1.0,
                },
            };
        }
    }
    // Core-consumed: a dequeue takes whatever is there.
    0.0
}

/// Per-operator rules: `P002` (predicted inflation) and `P006` (sub-line
/// MemQueue chunks).
fn check_operators(input: &PerfInput<'_>, op_perf: &[OpPerf], diagnostics: &mut Vec<Diagnostic>) {
    let p = input.pipeline;
    let params = &input.params;
    for (i, op) in p.operators().iter().enumerate() {
        let line = p.operator_lines()[i];
        match &op.kind {
            OperatorKind::Compress {
                codec, elem_bytes, ..
            } => {
                let profile = input.profile_for(i, *elem_bytes);
                let bpe = predicted_bytes_per_elem(*codec, &profile);
                if bpe > params.inflation_margin * f64::from(*elem_bytes) {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::P002,
                            Site::Operator(i),
                            line,
                            format!(
                                "{codec:?} is predicted to store {bpe:.2} B per \
                                 {elem_bytes} B element (ratio {:.2}): the \
                                 compressed stream inflates",
                                f64::from(*elem_bytes) / bpe
                            ),
                        )
                        .hint(
                            "pick a codec matched to the stream's width and \
                             value distribution, or skip compression for this \
                             class",
                        ),
                    );
                }
            }
            OperatorKind::MemQueue {
                chunk_elems,
                elem_bytes,
                mode,
                ..
            } => {
                let chunk_bytes = match mode {
                    MemQueueMode::Buffer => f64::from(*chunk_elems) * f64::from(*elem_bytes),
                    MemQueueMode::Append => {
                        let perf = &op_perf[i];
                        if perf.items_in > 0.0 {
                            // Mean appended chunk: input bytes per marker.
                            let markers = chunks_into(p, i, op_perf);
                            if markers > 0.0 {
                                perf.bytes_in / markers
                            } else {
                                f64::INFINITY
                            }
                        } else {
                            f64::INFINITY
                        }
                    }
                };
                if chunk_bytes < params.line_bytes / 2.0 {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::P006,
                            Site::Operator(i),
                            line,
                            format!(
                                "memqueue chunks average {chunk_bytes:.1} B, \
                                 under half a {:.0} B cache line: every chunk \
                                 store wastes most of its line",
                                params.line_bytes
                            ),
                        )
                        .hint("raise chunk_elems so chunks fill cache lines"),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Markers per unit flowing into operator `i`'s input queue.
fn chunks_into(p: &Pipeline, i: usize, op_perf: &[OpPerf]) -> f64 {
    let q = p.operators()[i].input;
    for (j, op) in p.operators().iter().enumerate() {
        if op.outputs.contains(&q) {
            return out_markers(
                &op.kind,
                Flow {
                    items: op_perf[j].items_in,
                    bytes: op_perf[j].bytes_in,
                    markers: 0.0,
                },
            )
            .max(marker_passthrough(p, j, op_perf));
        }
    }
    1.0 // core-fed: one chunk per unit
}

/// Conservative marker count produced by operator `j` per unit.
fn marker_passthrough(p: &Pipeline, j: usize, op_perf: &[OpPerf]) -> f64 {
    match &p.operators()[j].kind {
        OperatorKind::RangeFetch { marker, input, .. } if marker.is_some() => ranges_in(
            *input,
            Flow {
                items: op_perf[j].items_in,
                bytes: op_perf[j].bytes_in,
                markers: 0.0,
            },
        ),
        // Transforms forward one marker per consumed chunk; approximate
        // with one per firing batch.
        OperatorKind::Decompress { .. } | OperatorKind::Compress { .. } => 1.0,
        OperatorKind::MemQueue {
            chunk_elems,
            mode: MemQueueMode::Buffer,
            ..
        } => (op_perf[j].items_in / 2.0) / f64::from(*chunk_elems).max(1.0),
        _ => 0.0,
    }
}

/// Pipeline-level rules: `P003` (slower than software) and `P004`
/// (service-bound when DRAM should bind).
fn check_pipeline(
    input: &PerfInput<'_>,
    op_perf: &[OpPerf],
    delivered_elems: f64,
    service_cycles: f64,
    dram_cycles: f64,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let params = &input.params;
    // P003 only applies to pipelines that deliver elements to the core
    // (traversal-style); write-only compressors have no software analogue
    // with the same interface.
    if delivered_elems > 0.0 {
        let cpe = service_cycles.max(dram_cycles) / delivered_elems;
        if cpe >= params.sw_cycles_per_elem {
            diagnostics.push(
                Diagnostic::new(
                    Code::P003,
                    Site::Program,
                    None,
                    format!(
                        "predicted {cpe:.1} cycles per delivered element, no \
                         faster than the {:.1}-cycle software traversal bound",
                        params.sw_cycles_per_elem
                    ),
                )
                .hint(
                    "batch more elements per range or compress the fetched \
                     stream: per-range overheads dominate",
                ),
            );
        }
    }
    // P004: a pipeline that moves real memory traffic should be
    // DRAM-bound; service dominating by a wide margin means the engine
    // itself is the bottleneck.
    if dram_cycles > 0.0 && service_cycles > params.service_dram_margin * dram_cycles {
        let max_op = op_perf
            .iter()
            .max_by(|a, b| a.service_cycles.total_cmp(&b.service_cycles))
            .map_or(0, |o| o.index);
        diagnostics.push(
            Diagnostic::new(
                Code::P004,
                Site::Operator(max_op),
                input.pipeline.operator_lines()[max_op],
                format!(
                    "engine service rate binds: {service_cycles:.1} issue \
                     cycles per unit against {dram_cycles:.1} DRAM cycles",
                ),
            )
            .hint(
                "reduce firings on the hot operator (wider elements, fewer \
                 transform stages) or split work across engines",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::PipelineBuilder;
    use crate::lint::{render_json, Code};
    use spzip_compress::CodecKind;

    fn codes(report: &PerfReport) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Plain CSR traversal: offsets range-fetch feeding a neighbor
    /// range-fetch. Clean under default assumptions.
    fn traversal() -> Pipeline {
        let mut b = PipelineBuilder::new();
        let input = b.queue(16);
        let offs = b.queue(16);
        let neigh = b.queue(32);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0x1000,
                idx_bytes: 4,
                elem_bytes: 8,
                input: RangeInput::Pairs,
                marker: None,
                class: DataClass::AdjacencyMatrix,
            },
            input,
            vec![offs],
        );
        b.operator(
            OperatorKind::RangeFetch {
                base: 0x2000,
                idx_bytes: 8,
                elem_bytes: 4,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::AdjacencyMatrix,
            },
            offs,
            vec![neigh],
        );
        b.build().unwrap()
    }

    #[test]
    fn traversal_is_p_clean_and_dram_bound() {
        let p = traversal();
        let report = analyze(&PerfInput::new(&p));
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.binding, BindingResource::DramBandwidth);
        assert!(report.delivered_elems > 0.0);
        assert!(report.read_bytes[DataClass::AdjacencyMatrix.index()] > 0.0);
    }

    #[test]
    fn p001_fires_when_scaling_starves_a_queue() {
        // Declared capacities grossly over-subscribe the scratchpad: the
        // 8-word queue scales to 8 quarters, far below burst + demand.
        let mut b = PipelineBuilder::new();
        let input = b.queue(8);
        let ballast = b.queue(1000);
        let out = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::Other,
            },
            input,
            vec![ballast],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
            },
            ballast,
            vec![out],
        );
        let p = b.build().unwrap();
        let report = analyze(&PerfInput::new(&p));
        assert!(
            codes(&report).contains(&Code::P001),
            "{:?}",
            report.diagnostics
        );
        assert!(matches!(report.binding, BindingResource::QueueCapacity(_)));
    }

    #[test]
    fn p002_fires_on_predicted_inflation() {
        // Delta on 1-byte elements: even best-case delta storage (control
        // bits + 1 B class) exceeds the element width.
        let mut b = PipelineBuilder::new();
        let vals = b.queue(16);
        let bytes = b.queue(16);
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 1,
                sort_chunks: false,
            },
            vals,
            vec![bytes],
        );
        b.operator(
            OperatorKind::StreamWrite {
                base: 0x4000,
                class: DataClass::Updates,
            },
            bytes,
            vec![],
        );
        let p = b.build().unwrap();
        let report = analyze(&PerfInput::new(&p));
        assert!(
            codes(&report).contains(&Code::P002),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn calibrated_rates_stretch_transform_service() {
        // A rate-handicapped codec costs more service cycles than the
        // nominal table; the nominal table is exactly a no-op.
        let mut b = PipelineBuilder::new();
        let input = b.queue(16);
        let bytes = b.queue(32);
        let vals = b.queue(32);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::AdjacencyMatrix,
            },
            input,
            vec![bytes],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
            },
            bytes,
            vec![vals],
        );
        let p = b.build().unwrap();
        let nominal = analyze(&PerfInput::new(&p));

        let mut calibrated = PerfInput::new(&p);
        let mut rates = RateTable::nominal();
        rates.set(
            CodecKind::Delta,
            spzip_compress::model::CodecRates {
                decode_gbps: 1.0,
                encode_gbps: 1.0,
            },
        );
        rates.set(
            CodecKind::None,
            spzip_compress::model::CodecRates {
                decode_gbps: 8.0,
                encode_gbps: 8.0,
            },
        );
        calibrated.params.rates = rates;
        let scaled = analyze(&calibrated);

        let nom_svc = nominal.ops[1].service_cycles;
        let cal_svc = scaled.ops[1].service_cycles;
        assert!(
            cal_svc > nom_svc * 2.0,
            "calibration should stretch service: {nom_svc} vs {cal_svc}"
        );
        // Traffic is untouched by rate calibration.
        assert_eq!(nominal.total_bytes(), scaled.total_bytes());
    }

    #[test]
    fn p003_fires_on_tiny_ranges() {
        // One element per range: per-range line rounding swamps the
        // useful bytes, so each delivered element costs a DRAM eternity.
        let p = traversal();
        let mut input = PerfInput::new(&p);
        input.default_range_elems = 1.0;
        let report = analyze(&input);
        assert!(
            codes(&report).contains(&Code::P003),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn p004_fires_on_transform_heavy_chain() {
        // A recompression ladder: tiny compressed footprint in memory,
        // but every byte runs through four transform stages.
        let mut b = PipelineBuilder::new();
        let input = b.queue(8);
        let cbytes = b.queue(16);
        let vals = b.queue(32);
        let re = b.queue(16);
        let vals2 = b.queue(32);
        let out = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::Updates,
            },
            input,
            vec![cbytes],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Rle,
                elem_bytes: 8,
            },
            cbytes,
            vec![vals],
        );
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 8,
                sort_chunks: false,
            },
            vals,
            vec![re],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 8,
            },
            re,
            vec![vals2],
        );
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Delta,
                elem_bytes: 8,
                sort_chunks: false,
            },
            vals2,
            vec![out],
        );
        let p = b.build().unwrap();
        let mut input = PerfInput::new(&p);
        // A very compressible stored stream: long runs expand 8x+ on
        // decode, multiplying transform work per fetched byte.
        let mut prof = StreamProfile::default_for(8);
        prof.avg_run_len = 32.0;
        prof.avg_value_bytes = 1.0;
        input.profiles.insert(1, prof);
        let report = analyze(&input);
        assert!(
            codes(&report).contains(&Code::P004),
            "{:?}",
            report.diagnostics
        );
        assert!(matches!(
            report.binding,
            BindingResource::OperatorService(_)
        ));
    }

    #[test]
    fn p005_fires_on_marker_dominated_queue() {
        // One 1-byte element per range, marker after each: 4 marker
        // quarters against 1 payload quarter.
        let mut b = PipelineBuilder::new();
        let input = b.queue(16);
        let out = b.queue(16);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0,
                idx_bytes: 4,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::Frontier,
            },
            input,
            vec![out],
        );
        let p = b.build().unwrap();
        let mut pin = PerfInput::new(&p);
        pin.default_range_elems = 1.0;
        let report = analyze(&pin);
        assert!(
            codes(&report).contains(&Code::P005),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn p006_fires_on_sub_line_chunks() {
        // 2-element, 4-byte chunks: 8 B per chunk store against 64 B
        // lines.
        let mut b = PipelineBuilder::new();
        let input = b.queue(16);
        let out = b.queue(16);
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 4,
                data_base: 0x8000,
                stride: 0x1000,
                meta_addr: 0x7000,
                chunk_elems: 2,
                elem_bytes: 4,
                mode: MemQueueMode::Buffer,
                class: DataClass::Updates,
            },
            input,
            vec![out],
        );
        let p = b.build().unwrap();
        let report = analyze(&PerfInput::new(&p));
        assert!(
            codes(&report).contains(&Code::P006),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn perf_diagnostics_render_as_json() {
        let p = traversal();
        let mut input = PerfInput::new(&p);
        input.default_range_elems = 1.0;
        let report = analyze(&input);
        assert!(!report.diagnostics.is_empty());
        let json = render_json(&report.diagnostics);
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"code\":\"P003\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
    }

    #[test]
    fn report_totals_are_consistent() {
        let p = traversal();
        let report = analyze(&PerfInput::new(&p));
        let per_op: f64 = report.ops.iter().map(|o| o.mem_read + o.mem_write).sum();
        assert!((per_op - report.total_bytes()).abs() < 1e-9);
        assert!(report.cycles_per_unit() >= report.dram_cycles);
        assert!(report.cycles_per_unit() >= report.service_cycles);
    }
}
