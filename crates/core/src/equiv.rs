//! Translation validation for DCL rewrites (the seventh static pass).
//!
//! The repo rewrites pipelines — [`crate::suggest`] swaps codecs,
//! [`Pipeline::scale_queues`] rescales capacities — and this module proves
//! each rewrite sound instead of trusting it. Given two pipelines
//! (original and rewritten), [`validate`] computes a symbolic dataflow
//! summary per observable sink — the composition chain of transform
//! semantics feeding it, with compress/decompress as formal inverses per
//! codec and fetch/bin operators as uninterpreted functions over the
//! [`crate::shape`] region/width domain — and requires every sink to carry
//! the same value stream on both sides, modulo certified codec roundtrips.
//!
//! Observable sinks are memory-writing operators (`streamwrite`, both
//! MemQueue modes) and terminal queues (the core's dequeue sources);
//! prefetch-only indirections observe nothing and are ignored. Divergence
//! surfaces as the `V001`–`V006` error family through the
//! [`crate::lint`] machinery, each diagnostic carrying a two-sided
//! witness: the divergent symbolic chains, rendered side by side.
//!
//! "Modulo certified codec roundtrips" is what lets honest codec swaps
//! certify: an `encode(c)` immediately undone by `decode(c)` cancels, a
//! framed-region fetch feeding `decode(c)` collapses to a plain decoded
//! fetch when the region's declared framing agrees (the rewiring contract
//! re-encodes storage, see [`crate::suggest::rewired_schema`]), and an
//! encode terminating at a memory sink is absorbed into the sink when the
//! destination region is framed with the same codec. Everything else —
//! non-inverse pairings, dropped or duplicated streams, width changes,
//! reordered indirection chains, sink-set changes — is a counterexample.

use crate::dcl::{MemQueueMode, OperatorKind, Pipeline};
use crate::lint::{self, Code, Diagnostic, Site};
use crate::shape::{Framing, MemorySchema};
use crate::QueueId;
use spzip_compress::CodecKind;
use std::collections::BTreeMap;
use std::fmt;

/// Version of the translation validator, bumped whenever the symbolic
/// domain, normalization rules, or verdict semantics change. Included in
/// the bench driver's cache fingerprint.
pub const EQUIV_VERSION: u32 = 1;

/// The two pipelines under comparison, plus (optionally) each side's
/// declared memory layout. Schemas sharpen the analysis: region names
/// replace raw base addresses in the symbolic chains, and declared
/// framings let the validator certify or refute codec roundtrips against
/// storage instead of trusting the rewiring contract.
#[derive(Debug, Clone, Copy)]
pub struct EquivInput<'a> {
    /// The pipeline before the rewrite.
    pub original: &'a Pipeline,
    /// The pipeline after the rewrite.
    pub rewritten: &'a Pipeline,
    /// Memory layout the original runs against, when declared.
    pub original_schema: Option<&'a MemorySchema>,
    /// Memory layout the rewritten pipeline runs against (the rewiring
    /// may have re-framed regions), when declared.
    pub rewritten_schema: Option<&'a MemorySchema>,
}

impl<'a> EquivInput<'a> {
    /// Schema-free comparison: codec roundtrips are certified against the
    /// rewiring contract (storage is re-encoded to match the new codec)
    /// rather than a declared layout.
    pub fn new(original: &'a Pipeline, rewritten: &'a Pipeline) -> Self {
        EquivInput {
            original,
            rewritten,
            original_schema: None,
            rewritten_schema: None,
        }
    }

    /// Comparison against declared layouts for both sides.
    pub fn with_schemas(
        original: &'a Pipeline,
        rewritten: &'a Pipeline,
        original_schema: &'a MemorySchema,
        rewritten_schema: &'a MemorySchema,
    ) -> Self {
        EquivInput {
            original,
            rewritten,
            original_schema: Some(original_schema),
            rewritten_schema: Some(rewritten_schema),
        }
    }
}

/// The validator's verdict.
#[derive(Debug, Clone)]
pub struct EquivReport {
    diagnostics: Vec<Diagnostic>,
    /// Observable sinks compared (matched across both pipelines).
    pub sinks_checked: usize,
}

impl EquivReport {
    /// The `V0xx` findings, in deterministic render order.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics.clone()
    }

    /// No divergence: every observable sink provably carries the same
    /// value stream in both pipelines.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// One uninterpreted or algebraic step in a sink's dataflow chain,
/// source-to-sink order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Atom {
    /// Uninterpreted memory fetch: `op` is the fetch flavour (range,
    /// consecutive range, indirect, paired indirect), `target` the region
    /// (by name when a schema resolves the base, else the hex base).
    Fetch {
        op: &'static str,
        target: String,
        width: u8,
    },
    /// A framed-region fetch fused with its decode: yields the region's
    /// decoded values. The codec is dropped — storage and decode were
    /// certified to agree.
    FetchDecoded { target: String, width: u8 },
    /// Buffer-mode MemQueue: regroups the stream into `bins` per-bin
    /// chunk sequences (uninterpreted over bin ids).
    Bin {
        target: String,
        bins: u32,
        width: u8,
    },
    /// Chunk decode.
    Decode { codec: CodecKind, width: u8 },
    /// Chunk encode.
    Encode {
        codec: CodecKind,
        width: u8,
        sorted: bool,
    },
    /// Residue of a cancelled sorted encode/decode roundtrip: each chunk
    /// comes back sorted, which is observable.
    SortChunks { width: u8 },
    /// Residue of a same-codec roundtrip at mismatched widths.
    Reinterpret { from: u8, to: u8 },
    /// A refuted roundtrip: the stored stream (`stored` codec or framing)
    /// does not invert under `transform`.
    NonInverse {
        stored: String,
        transform: String,
        width: u8,
    },
}

impl Atom {
    /// Same constructor and same non-width configuration — the shapes a
    /// width-changing rewrite (`V004`) preserves.
    fn shape_eq(&self, other: &Atom) -> bool {
        match (self, other) {
            (
                Atom::Fetch {
                    op: a, target: t, ..
                },
                Atom::Fetch {
                    op: b, target: u, ..
                },
            ) => a == b && t == u,
            (Atom::FetchDecoded { target: t, .. }, Atom::FetchDecoded { target: u, .. }) => t == u,
            (
                Atom::Bin {
                    target: t, bins: a, ..
                },
                Atom::Bin {
                    target: u, bins: b, ..
                },
            ) => t == u && a == b,
            (Atom::Decode { codec: a, .. }, Atom::Decode { codec: b, .. }) => a == b,
            (
                Atom::Encode {
                    codec: a,
                    sorted: s,
                    ..
                },
                Atom::Encode {
                    codec: b,
                    sorted: z,
                    ..
                },
            ) => a == b && s == z,
            (Atom::SortChunks { .. }, Atom::SortChunks { .. }) => true,
            (Atom::Reinterpret { .. }, Atom::Reinterpret { .. }) => true,
            (
                Atom::NonInverse {
                    stored: a,
                    transform: t,
                    ..
                },
                Atom::NonInverse {
                    stored: b,
                    transform: u,
                    ..
                },
            ) => a == b && t == u,
            _ => false,
        }
    }
}

fn codec_name(c: CodecKind) -> &'static str {
    match c {
        CodecKind::None => "none",
        CodecKind::Delta => "delta",
        CodecKind::Bpc32 => "bpc32",
        CodecKind::Bpc64 => "bpc64",
        CodecKind::Rle => "rle",
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Fetch { op, target, width } => write!(f, "{op}[{target},w{width}]"),
            Atom::FetchDecoded { target, width } => write!(f, "fetchdec[{target},w{width}]"),
            Atom::Bin {
                target,
                bins,
                width,
            } => write!(f, "bin[{target},x{bins},w{width}]"),
            Atom::Decode { codec, width } => write!(f, "decode({},w{width})", codec_name(*codec)),
            Atom::Encode {
                codec,
                width,
                sorted,
            } => {
                let s = if *sorted { ",sorted" } else { "" };
                write!(f, "encode({},w{width}{s})", codec_name(*codec))
            }
            Atom::SortChunks { width } => write!(f, "sortchunks(w{width})"),
            Atom::Reinterpret { from, to } => write!(f, "reinterpret(w{from}->w{to})"),
            Atom::NonInverse {
                stored,
                transform,
                width,
            } => write!(f, "noninverse({stored}!={transform},w{width})"),
        }
    }
}

/// The symbolic summary of one observable sink: the core-input queue the
/// chain originates at, the normalized atom composition, and sink-level
/// flags (an absorbed terminal encode marks the sink `encoded`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SinkSummary {
    site: Site,
    source: QueueId,
    atoms: Vec<Atom>,
    /// Memory sink stores codec frames (certified against its region's
    /// framing); the chain's values are the decoded stream.
    encoded: bool,
}

impl SinkSummary {
    fn render(&self) -> String {
        let mut s = format!("in(q{})", self.source);
        for a in &self.atoms {
            s.push_str(&format!(" -> {a}"));
        }
        if self.encoded {
            s.push_str(" -> store(framed)");
        }
        s
    }
}

/// Resolves a base address to a region name when a schema declares one.
fn target_name(schema: Option<&MemorySchema>, base: u64) -> String {
    match schema.and_then(|s| s.region_containing(base)) {
        Some(r) => r.name.clone(),
        None => format!("0x{base:x}"),
    }
}

/// The declared framing of the region containing `base`, when known.
fn framing_at(schema: Option<&MemorySchema>, base: u64) -> Option<Framing> {
    schema
        .and_then(|s| s.region_containing(base))
        .map(|r| r.framing)
}

/// Walks upstream from (and including) operator `op`, collecting atoms in
/// source-to-sink order, and returns the core-input queue the chain
/// starts at. Chains are linear by construction: every operator has one
/// input queue and every queue one producer (lint `E007`).
fn walk_chain(p: &Pipeline, schema: Option<&MemorySchema>, op: usize) -> (QueueId, Vec<Atom>) {
    let mut atoms = Vec::new();
    let mut cur = op;
    loop {
        let spec = &p.operators()[cur];
        if let Some(atom) = atom_of(&spec.kind, schema) {
            atoms.push(atom);
        }
        let q = spec.input;
        match p.operators().iter().position(|o| o.outputs.contains(&q)) {
            Some(producer) => cur = producer,
            None => {
                atoms.reverse();
                return (q, atoms);
            }
        }
    }
}

/// The symbolic step an operator applies to its stream; `None` for pure
/// sinks (stream writers, append MQUs) which contribute no transform.
fn atom_of(kind: &OperatorKind, schema: Option<&MemorySchema>) -> Option<Atom> {
    match kind {
        OperatorKind::RangeFetch {
            base,
            elem_bytes,
            input,
            ..
        } => Some(Atom::Fetch {
            op: match input {
                crate::dcl::RangeInput::Pairs => "range",
                crate::dcl::RangeInput::Consecutive => "rangec",
            },
            target: target_name(schema, *base),
            width: *elem_bytes,
        }),
        OperatorKind::Indirect {
            base,
            elem_bytes,
            pair,
            ..
        } => Some(Atom::Fetch {
            op: if *pair { "indirect2" } else { "indirect" },
            target: target_name(schema, *base),
            width: *elem_bytes,
        }),
        OperatorKind::Decompress { codec, elem_bytes } => Some(Atom::Decode {
            codec: *codec,
            width: *elem_bytes,
        }),
        OperatorKind::Compress {
            codec,
            elem_bytes,
            sort_chunks,
        } => Some(Atom::Encode {
            codec: *codec,
            width: *elem_bytes,
            sorted: *sort_chunks,
        }),
        OperatorKind::MemQueue {
            mode: MemQueueMode::Buffer,
            num_queues,
            data_base,
            elem_bytes,
            ..
        } => Some(Atom::Bin {
            target: target_name(schema, *data_base),
            bins: *num_queues,
            width: *elem_bytes,
        }),
        OperatorKind::StreamWrite { .. }
        | OperatorKind::MemQueue {
            mode: MemQueueMode::Append,
            ..
        } => None,
    }
}

/// Rewrites the chain to a normal form: certified codec roundtrips cancel
/// (leaving their observable residues), framed fetches fuse with their
/// decodes, refuted pairings become explicit [`Atom::NonInverse`] markers.
/// Runs to fixpoint; each rule strictly shrinks or ends rewriting, so it
/// terminates.
fn normalize(mut atoms: Vec<Atom>, fetch_framings: &BTreeMap<String, Framing>) -> Vec<Atom> {
    loop {
        let mut changed = false;
        let mut i = 0;
        while i + 1 < atoms.len() {
            let replace: Option<Vec<Atom>> = match (&atoms[i], &atoms[i + 1]) {
                // encode(c) immediately undone by decode(c): a certified
                // roundtrip. Sorted encodes leave a per-chunk sort; width
                // disagreement leaves a reinterpretation; codec
                // disagreement refutes the pairing.
                (
                    Atom::Encode {
                        codec: c1,
                        width: w1,
                        sorted,
                    },
                    Atom::Decode {
                        codec: c2,
                        width: w2,
                    },
                ) => {
                    if c1 != c2 {
                        Some(vec![Atom::NonInverse {
                            stored: codec_name(*c1).to_string(),
                            transform: codec_name(*c2).to_string(),
                            width: *w2,
                        }])
                    } else if w1 != w2 {
                        Some(vec![Atom::Reinterpret { from: *w1, to: *w2 }])
                    } else if *sorted {
                        Some(vec![Atom::SortChunks { width: *w1 }])
                    } else {
                        Some(vec![])
                    }
                }
                // A byte-wise fetch feeding a decode pulls codec frames
                // from storage. With a declared framing we certify (or
                // refute) the pairing against the region; without one the
                // rewiring contract guarantees storage matches the decode.
                (
                    Atom::Fetch {
                        target, width: 1, ..
                    },
                    Atom::Decode { codec, width },
                ) => match fetch_framings.get(target) {
                    Some(Framing::Frames { codec: stored, .. }) if stored == codec => {
                        Some(vec![Atom::FetchDecoded {
                            target: target.clone(),
                            width: *width,
                        }])
                    }
                    Some(Framing::Frames { codec: stored, .. }) => Some(vec![Atom::NonInverse {
                        stored: codec_name(*stored).to_string(),
                        transform: codec_name(*codec).to_string(),
                        width: *width,
                    }]),
                    Some(Framing::Raw) => Some(vec![Atom::NonInverse {
                        stored: "raw".to_string(),
                        transform: codec_name(*codec).to_string(),
                        width: *width,
                    }]),
                    None => Some(vec![Atom::FetchDecoded {
                        target: target.clone(),
                        width: *width,
                    }]),
                },
                _ => None,
            };
            if let Some(mut repl) = replace {
                atoms.splice(i..i + 2, repl.drain(..));
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return atoms;
        }
    }
}

/// Collects the summary of every observable sink, keyed for cross-side
/// matching: terminal queues by queue id, memory writers by kind plus
/// target region.
fn summarize(p: &Pipeline, schema: Option<&MemorySchema>) -> BTreeMap<String, SinkSummary> {
    let mut fetch_framings = BTreeMap::new();
    if let Some(s) = schema {
        for r in &s.regions {
            fetch_framings.insert(r.name.clone(), r.framing);
        }
    }
    let mut sinks = BTreeMap::new();
    // Memory-writing operators.
    for (i, spec) in p.operators().iter().enumerate() {
        let (key, store_base) = match &spec.kind {
            OperatorKind::StreamWrite { base, .. } => {
                (format!("write@{}", target_name(schema, *base)), Some(*base))
            }
            OperatorKind::MemQueue {
                mode: MemQueueMode::Append,
                data_base,
                ..
            } => (
                format!("append@{}", target_name(schema, *data_base)),
                Some(*data_base),
            ),
            OperatorKind::MemQueue {
                mode: MemQueueMode::Buffer,
                data_base,
                ..
            } => (format!("bin@{}", target_name(schema, *data_base)), None),
            _ => continue,
        };
        let (source, atoms) = walk_chain(p, schema, i);
        let mut atoms = normalize(atoms, &fetch_framings);
        // An encode terminating at a memory store is absorbed into the
        // sink when the destination's framing certifies it (or when the
        // rewiring contract must, absent a schema): the observable stream
        // is the decoded one. A sorted encode still leaves its sort.
        let mut encoded = false;
        if store_base.is_some() {
            if let Some(Atom::Encode {
                codec,
                width,
                sorted,
            }) = atoms.last().cloned()
            {
                let certified = match store_base.and_then(|b| framing_at(schema, b)) {
                    Some(Framing::Frames { codec: stored, .. }) => {
                        if stored == codec {
                            Some(true)
                        } else {
                            Some(false)
                        }
                    }
                    Some(Framing::Raw) => None, // encoded bytes into a raw region: keep Encode
                    None => Some(true),         // no schema: the rewiring contract re-frames
                };
                match certified {
                    Some(true) => {
                        atoms.pop();
                        if sorted {
                            atoms.push(Atom::SortChunks { width });
                        }
                        encoded = true;
                    }
                    Some(false) => {
                        atoms.pop();
                        atoms.push(Atom::NonInverse {
                            stored: "stored-framing".to_string(),
                            transform: codec_name(codec).to_string(),
                            width,
                        });
                        encoded = true;
                    }
                    None => {}
                }
            }
        }
        sinks.insert(
            key,
            SinkSummary {
                site: Site::Operator(i),
                source,
                atoms,
                encoded,
            },
        );
    }
    // Terminal queues.
    for q in p.core_output_queues() {
        let producer = p
            .operators()
            .iter()
            .position(|o| o.outputs.contains(&q))
            .expect("a core-output queue has a producer by definition");
        let (source, atoms) = walk_chain(p, schema, producer);
        let atoms = normalize(atoms, &fetch_framings);
        sinks.insert(
            format!("q{q}"),
            SinkSummary {
                site: Site::Queue(q),
                source,
                atoms,
                encoded: false,
            },
        );
    }
    sinks
}

/// Multiset equality over rendered atoms — the `V005` (reordered chain)
/// discriminator.
fn same_multiset(a: &[Atom], b: &[Atom]) -> bool {
    let mut xs: Vec<String> = a.iter().map(|x| x.to_string()).collect();
    let mut ys: Vec<String> = b.iter().map(|x| x.to_string()).collect();
    xs.sort();
    ys.sort();
    xs == ys
}

fn two_sided(orig: &SinkSummary, rew: &SinkSummary) -> String {
    format!(
        "original <{}> vs rewritten <{}>",
        orig.render(),
        rew.render()
    )
}

/// Classifies one matched-but-divergent sink pair into its `V` code, most
/// specific first: a different source stream (`V003`) before a refuted
/// codec pairing (`V002`) before a pure width change (`V004`) before a
/// reordering (`V005`) before the catch-all stream divergence (`V001`).
fn classify(orig: &SinkSummary, rew: &SinkSummary) -> (Code, &'static str) {
    if orig.source != rew.source {
        return (
            Code::V003,
            "reconnect the sink to the value stream it consumed before the rewrite",
        );
    }
    let non_inverse =
        |s: &SinkSummary| s.atoms.iter().any(|a| matches!(a, Atom::NonInverse { .. }));
    if non_inverse(orig) != non_inverse(rew) || (non_inverse(rew) && orig.atoms != rew.atoms) {
        return (
            Code::V002,
            "swap both sides of the codec pair together, or re-frame the stored stream to match",
        );
    }
    if orig.atoms.len() == rew.atoms.len()
        && orig
            .atoms
            .iter()
            .zip(&rew.atoms)
            .all(|(a, b)| a.shape_eq(b))
        && orig.encoded == rew.encoded
    {
        return (
            Code::V004,
            "keep element widths fixed across the rewrite, or widen the consumer to match",
        );
    }
    if same_multiset(&orig.atoms, &rew.atoms) && orig.encoded == rew.encoded {
        return (
            Code::V005,
            "restore the original operator order: indirection chains do not commute",
        );
    }
    (
        Code::V001,
        "the rewrite must preserve each sink's transform chain up to certified codec roundtrips",
    )
}

/// Validates that `input.rewritten` is observationally equivalent to
/// `input.original`: every observable sink (memory-writing operator,
/// terminal queue) carries the same symbolic value stream, modulo
/// certified codec roundtrips. Returns a clean report or `V001`–`V006`
/// error diagnostics, each witnessed by the two divergent chains.
pub fn validate(input: &EquivInput<'_>) -> EquivReport {
    let orig = summarize(input.original, input.original_schema);
    let rew = summarize(input.rewritten, input.rewritten_schema);
    let mut diagnostics = Vec::new();
    let mut sinks_checked = 0usize;
    let mut sink_level_source_mismatch = false;

    for (key, o) in &orig {
        match rew.get(key) {
            None => {
                sink_level_source_mismatch = true;
                diagnostics.push(
                    Diagnostic::new(
                        Code::V006,
                        Site::Program,
                        None,
                        format!(
                            "rewrite removes observable sink {key}: original <{}>",
                            o.render()
                        ),
                    )
                    .hint("every memory writer and terminal queue must survive the rewrite"),
                );
            }
            Some(r) => {
                sinks_checked += 1;
                if o != r {
                    let (code, hint) = classify(o, r);
                    if code == Code::V003 {
                        sink_level_source_mismatch = true;
                    }
                    diagnostics.push(
                        Diagnostic::new(
                            code,
                            r.site,
                            None,
                            format!("sink {key} diverges after rewrite: {}", two_sided(o, r)),
                        )
                        .hint(hint),
                    );
                }
            }
        }
    }
    for (key, r) in &rew {
        if !orig.contains_key(key) {
            sink_level_source_mismatch = true;
            diagnostics.push(
                Diagnostic::new(
                    Code::V006,
                    r.site,
                    None,
                    format!(
                        "rewrite introduces observable sink {key}: rewritten <{}>",
                        r.render()
                    ),
                )
                .hint("a rewrite may not create new memory writers or terminal queues"),
            );
        }
    }

    // A changed set of core-input queues drops or duplicates a stream at
    // the program level even when every sink matched (e.g. an input that
    // only fed a prefetch). Sink-level V003/V006 findings already witness
    // the divergence when present.
    if !sink_level_source_mismatch {
        let a = input.original.core_input_queues();
        let b = input.rewritten.core_input_queues();
        if a != b {
            diagnostics.push(
                Diagnostic::new(
                    Code::V003,
                    Site::Program,
                    None,
                    format!(
                        "rewrite changes the core-input streams: original consumes {a:?}, \
                         rewritten consumes {b:?}"
                    ),
                )
                .hint("every core-fed stream must keep exactly one consumer chain"),
            );
        }
    }

    EquivReport {
        diagnostics: lint::sorted_for_render(&diagnostics),
        sinks_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::{OperatorKind, PipelineBuilder, RangeInput};
    use crate::shape::RegionSchema;
    use spzip_mem::DataClass;

    fn range(base: u64, elem_bytes: u8) -> OperatorKind {
        OperatorKind::RangeFetch {
            base,
            idx_bytes: 8,
            elem_bytes,
            input: RangeInput::Pairs,
            marker: Some(0),
            class: DataClass::AdjacencyMatrix,
        }
    }

    fn indirect(base: u64) -> OperatorKind {
        OperatorKind::Indirect {
            base,
            elem_bytes: 8,
            pair: false,
            class: DataClass::DestinationVertex,
        }
    }

    /// `in -> compress(c) -> decompress(c) -> out`: the roundtrip chain.
    fn roundtrip(c1: CodecKind, c2: CodecKind) -> Pipeline {
        let mut b = PipelineBuilder::new();
        let q0 = b.queue(32);
        let q1 = b.queue(32);
        let q2 = b.queue(32);
        b.operator(
            OperatorKind::Compress {
                codec: c1,
                elem_bytes: 8,
                sort_chunks: false,
            },
            q0,
            vec![q1],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: c2,
                elem_bytes: 8,
            },
            q1,
            vec![q2],
        );
        b.build().unwrap()
    }

    fn codes(r: &EquivReport) -> Vec<String> {
        r.diagnostics()
            .iter()
            .map(|d| d.code.as_str().to_string())
            .collect()
    }

    #[test]
    fn identity_is_clean() {
        let p = roundtrip(CodecKind::Delta, CodecKind::Delta);
        let r = validate(&EquivInput::new(&p, &p.clone()));
        assert!(r.is_clean());
        assert_eq!(r.sinks_checked, 1);
    }

    #[test]
    fn matched_codec_pair_swap_is_clean() {
        // Swapping BOTH sides of an internal pair keeps the roundtrip.
        let p = roundtrip(CodecKind::Delta, CodecKind::Delta);
        let q = roundtrip(CodecKind::Rle, CodecKind::Rle);
        assert!(validate(&EquivInput::new(&p, &q)).is_clean());
    }

    #[test]
    fn one_sided_codec_swap_is_v002() {
        let p = roundtrip(CodecKind::Delta, CodecKind::Delta);
        let q = roundtrip(CodecKind::Delta, CodecKind::Rle);
        let r = validate(&EquivInput::new(&p, &q));
        assert_eq!(codes(&r), vec!["V002"]);
        let d = &r.diagnostics()[0];
        assert!(d.message.contains("original <"), "{}", d.message);
        assert!(d.message.contains("noninverse(delta!=rle"), "{}", d.message);
    }

    #[test]
    fn width_changing_rewrite_is_v004() {
        let build = |w: u8| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let q1 = b.queue(64);
            b.operator(range(0x1000, w), q0, vec![q1]);
            b.build().unwrap()
        };
        let r = validate(&EquivInput::new(&build(8), &build(4)));
        assert_eq!(codes(&r), vec!["V004"]);
    }

    #[test]
    fn reordered_indirection_chain_is_v005() {
        let build = |first: u64, second: u64| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let q1 = b.queue(32);
            let q2 = b.queue(32);
            b.operator(indirect(first), q0, vec![q1]);
            b.operator(indirect(second), q1, vec![q2]);
            b.build().unwrap()
        };
        let r = validate(&EquivInput::new(
            &build(0x1000, 0x2000),
            &build(0x2000, 0x1000),
        ));
        assert_eq!(codes(&r), vec!["V005"]);
    }

    #[test]
    fn swapped_source_queue_is_v003() {
        let build = |cross: bool| {
            let mut b = PipelineBuilder::new();
            let in_a = b.queue(32);
            let in_b = b.queue(32);
            let out_a = b.queue(32);
            let out_b = b.queue(32);
            let (qa, qb) = if cross { (in_b, in_a) } else { (in_a, in_b) };
            b.operator(indirect(0x1000), qa, vec![out_a]);
            b.operator(indirect(0x1000), qb, vec![out_b]);
            b.build().unwrap()
        };
        let r = validate(&EquivInput::new(&build(false), &build(true)));
        assert_eq!(codes(&r), vec!["V003", "V003"]);
    }

    #[test]
    fn dropped_sink_is_v006() {
        let build = |fan: bool| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let out_a = b.queue(64);
            let out_b = b.queue(64);
            let outs = if fan { vec![out_a, out_b] } else { vec![out_a] };
            b.operator(range(0x1000, 8), q0, outs);
            if !fan {
                // Keep q2 declared so queue sets match; it dangles.
                let _ = out_b;
            }
            b.build().unwrap()
        };
        let r = validate(&EquivInput::new(&build(true), &build(false)));
        assert_eq!(codes(&r), vec!["V006"]);
    }

    #[test]
    fn dropped_encode_stage_is_v001() {
        let write = |compress: bool| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let mut q = q0;
            if compress {
                let q1 = b.queue(32);
                b.operator(
                    OperatorKind::Compress {
                        codec: CodecKind::Delta,
                        elem_bytes: 8,
                        sort_chunks: false,
                    },
                    q0,
                    vec![q1],
                );
                q = q1;
            }
            b.operator(
                OperatorKind::StreamWrite {
                    base: 0x9000,
                    class: DataClass::Updates,
                },
                q,
                vec![],
            );
            b.build().unwrap()
        };
        // Schema-free: the terminal encode is absorbed as a certified
        // framed store, so dropping it flips the sink's encoded flag.
        let r = validate(&EquivInput::new(&write(true), &write(false)));
        assert_eq!(codes(&r), vec!["V001"]);
    }

    #[test]
    fn schema_refutes_mismatched_decode_framing() {
        let decode_from = |codec: CodecKind| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let q1 = b.queue(64);
            let q2 = b.queue(64);
            b.operator(range(0x1000, 1), q0, vec![q1]);
            b.operator(
                OperatorKind::Decompress {
                    codec,
                    elem_bytes: 4,
                },
                q1,
                vec![q2],
            );
            b.build().unwrap()
        };
        let mut schema = MemorySchema::new();
        schema.add_region(RegionSchema::framed(
            "bins",
            0x1000,
            0x1000,
            CodecKind::Delta,
            4,
            None,
        ));
        let p = decode_from(CodecKind::Delta);
        let q = decode_from(CodecKind::Rle);
        // Same schema both sides: the rewrite did NOT re-frame storage.
        let r = validate(&EquivInput::with_schemas(&p, &q, &schema, &schema));
        assert_eq!(codes(&r), vec!["V002"]);

        // With the storage honestly re-framed, the same swap certifies.
        let mut reframed = MemorySchema::new();
        reframed.add_region(RegionSchema::framed(
            "bins",
            0x1000,
            0x1000,
            CodecKind::Rle,
            4,
            None,
        ));
        let r = validate(&EquivInput::with_schemas(&p, &q, &schema, &reframed));
        assert!(r.is_clean(), "{:?}", r.diagnostics());
    }

    #[test]
    fn sorted_roundtrip_residue_matches_only_sorted() {
        let rt = |sorted: bool| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(32);
            let q1 = b.queue(32);
            let q2 = b.queue(32);
            b.operator(
                OperatorKind::Compress {
                    codec: CodecKind::Delta,
                    elem_bytes: 8,
                    sort_chunks: sorted,
                },
                q0,
                vec![q1],
            );
            b.operator(
                OperatorKind::Decompress {
                    codec: CodecKind::Delta,
                    elem_bytes: 8,
                },
                q1,
                vec![q2],
            );
            b.build().unwrap()
        };
        assert!(validate(&EquivInput::new(&rt(true), &rt(true))).is_clean());
        let r = validate(&EquivInput::new(&rt(false), &rt(true)));
        assert_eq!(codes(&r), vec!["V001"]);
    }

    #[test]
    fn validator_is_deterministic() {
        let p = roundtrip(CodecKind::Delta, CodecKind::Delta);
        let q = roundtrip(CodecKind::Delta, CodecKind::Rle);
        let a = validate(&EquivInput::new(&p, &q));
        let b = validate(&EquivInput::new(&p, &q));
        assert_eq!(a.diagnostics(), b.diagnostics());
        assert_eq!(a.sinks_checked, b.sinks_checked);
    }

    #[test]
    fn report_renders_rustc_style() {
        let p = roundtrip(CodecKind::Delta, CodecKind::Delta);
        let q = roundtrip(CodecKind::Delta, CodecKind::Rle);
        let r = validate(&EquivInput::new(&p, &q));
        let text = lint::render(&r.diagnostics());
        assert!(text.contains("error[V002]"), "{text}");
        assert!(text.contains("= help:"), "{text}");
    }
}
