//! Static codec auto-selection over DCL pipelines (A-codes).
//!
//! Where [`crate::perf`] answers "how will this pipeline perform?", this
//! module answers "which codec *should* each compressed queue use?" — the
//! Copernicus observation that format choice swings sparse-workload
//! performance by integer factors, turned into a static pass. For every
//! transform operator the pass:
//!
//! 1. enumerates candidate codecs — every [`CodecKind`], including
//!    `None` ("no compression"),
//! 2. prices each candidate with the [`crate::perf`] flow model: the
//!    pipeline is rewired ([`Pipeline::with_op_codec`]), the
//!    [`spzip_compress::model`] ratio profile predicts the candidate's
//!    footprint, and the [`RateTable`](spzip_compress::model::RateTable)
//!    — calibrated from measured kernel rates in `BENCH_codecs.json` —
//!    prices its transform service cost,
//! 3. validates the winning rewiring: the rewired program must lint
//!    error-clean, and, when a [`MemorySchema`] is declared, the shape
//!    verifier must accept the rewired pipeline against a schema whose
//!    region framing is re-declared to match (the plan re-encodes the
//!    region, so the framing moves with the codec).
//!
//! Findings are advisory diagnostics through the shared [`crate::lint`]
//! machinery — warning severity, never build- or CI-failing:
//!
//! * `A001` — a different codec is predicted at least
//!   [`SuggestInput::min_gain`] faster than the current one,
//! * `A002` — compression is predicted net-negative: `None` (identity)
//!   wins over the current real codec,
//! * `A003` — a faster candidate exists but the verifier rejects the
//!   rewired pipeline; the suggestion is suppressed and the plan falls
//!   back to the best candidate that validates.
//!
//! Alongside the diagnostics the pass emits a machine-readable rewiring
//! plan ([`PlanEntry`]); [`apply_plan`] and [`rewired_schema`] turn a
//! plan back into a validated pipeline + schema pair, and
//! [`apply_plan_certified`] additionally proves the pair observationally
//! equivalent to the original through the [`crate::equiv`] translation
//! validator — the only path the `auto_codecs` builder mode in
//! `spzip-apps` uses, so an uncertified plan is demoted to an `A003`
//! suppression ([`demote_uncertified`]) instead of ever being applied.

use crate::dcl::{OperatorKind, Pipeline};
use crate::lint::{Code, Diagnostic, Site};
use crate::perf::{analyze, PerfInput, PerfParams};
use crate::shape::{self, Framing, MemorySchema};
use crate::QueueId;
use spzip_compress::model::{codec_trajectory_name, StreamProfile};
use spzip_compress::CodecKind;
use std::collections::BTreeMap;

/// Version of the suggestion pass, bumped whenever candidate enumeration,
/// pricing, or validation semantics change. Included in cache
/// fingerprints alongside `PERF_VERSION`.
pub const SUGGEST_VERSION: u32 = 1;

/// Default minimum predicted improvement (fractional) before a suggestion
/// is worth an advisory: re-encoding a region is not free, so near-ties
/// stay quiet.
pub const DEFAULT_MIN_GAIN: f64 = 0.05;

/// A pipeline plus everything the selection pass may assume: the perf
/// model's inputs (machine parameters with a codec [`RateTable`]
/// calibration, range sizes, stream profiles), an optional declared
/// memory layout for shape validation, and the advisory threshold.
///
/// [`RateTable`]: spzip_compress::model::RateTable
#[derive(Debug, Clone)]
pub struct SuggestInput<'a> {
    /// The validated program under analysis.
    pub pipeline: &'a Pipeline,
    /// Declared memory layout, when one exists (builtins). File-mode
    /// pipelines pass `None` and are validated by lint alone.
    pub schema: Option<&'a MemorySchema>,
    /// Machine parameters, including the codec rate calibration.
    pub params: PerfParams,
    /// Expected elements per range (see [`PerfInput::default_range_elems`]).
    pub default_range_elems: f64,
    /// Per-operator override of `default_range_elems`.
    pub range_elems: BTreeMap<usize, f64>,
    /// Per-operator value profiles for transform operators.
    pub profiles: BTreeMap<usize, StreamProfile>,
    /// Minimum fractional predicted improvement before advising a swap.
    pub min_gain: f64,
}

impl<'a> SuggestInput<'a> {
    /// Default assumptions for `pipeline`, no schema.
    pub fn new(pipeline: &'a Pipeline) -> Self {
        SuggestInput {
            pipeline,
            schema: None,
            params: PerfParams::default(),
            default_range_elems: 32.0,
            range_elems: BTreeMap::new(),
            profiles: BTreeMap::new(),
            min_gain: DEFAULT_MIN_GAIN,
        }
    }

    /// Default assumptions plus a declared memory layout: winning
    /// rewirings must additionally pass the shape verifier.
    pub fn with_schema(pipeline: &'a Pipeline, schema: &'a MemorySchema) -> Self {
        SuggestInput {
            schema: Some(schema),
            ..Self::new(pipeline)
        }
    }

    fn perf_input<'b>(&self, pipeline: &'b Pipeline) -> PerfInput<'b> {
        PerfInput {
            pipeline,
            params: self.params.clone(),
            default_range_elems: self.default_range_elems,
            range_elems: self.range_elems.clone(),
            profiles: self.profiles.clone(),
        }
    }
}

/// One rewiring the pass recommends: swap operator `op`'s codec. The
/// machine-readable half of the report — stable field names, rendered
/// into `dcl-perf --suggest --format json` verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// Transform operator definition index.
    pub op: usize,
    /// The operator's input queue (the "compressed queue" being rewired).
    pub queue: QueueId,
    /// Current codec, as its `BENCH_codecs.json` trajectory name.
    pub current: String,
    /// Suggested codec, as its trajectory name.
    pub suggested: String,
    /// Predicted fractional improvement of the pipeline metric (0.12 =
    /// 12% fewer cycles per delivered element).
    pub gain: f64,
}

impl PlanEntry {
    /// Renders the entry as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"op\":{},\"queue\":{},\"current\":\"{}\",\"suggested\":\"{}\",\"gain\":{:.4}}}",
            self.op, self.queue, self.current, self.suggested, self.gain
        )
    }
}

/// Everything the selection pass concludes about one pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestReport {
    /// `A0xx` advisories, in operator order.
    pub diagnostics: Vec<Diagnostic>,
    /// The rewiring plan: one entry per operator whose best *validated*
    /// candidate beats the current codec by at least the threshold.
    pub plan: Vec<PlanEntry>,
    /// Transform operators examined.
    pub transforms: usize,
    /// Pipeline metric (cycles per delivered element, or cycles per unit
    /// for pipelines that deliver nothing) under the current codecs.
    pub baseline_metric: f64,
    /// The metric with the full plan applied (equals `baseline_metric`
    /// when the plan is empty).
    pub auto_metric: f64,
}

impl SuggestReport {
    /// No advisories and an empty plan: the current codecs are already
    /// predicted best (within the threshold).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.plan.is_empty()
    }

    /// Renders the plan as a JSON array (one entry per line).
    pub fn plan_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.plan.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

/// The codec and (for compressors) sort flag operator `op` carries, if it
/// is a transform.
fn op_codec(p: &Pipeline, op: usize) -> Option<(CodecKind, bool)> {
    match &p.operators()[op].kind {
        OperatorKind::Decompress { codec, .. } => Some((*codec, false)),
        OperatorKind::Compress {
            codec, sort_chunks, ..
        } => Some((*codec, *sort_chunks)),
        _ => None,
    }
}

/// The pipeline metric the pass minimizes: cycles per delivered element
/// for traversal-style pipelines, cycles per unit of core-side work for
/// write-only ones. Codec-swap invariant in its normalization (the unit
/// is the core's work, not the stream's encoding).
fn metric(input: &SuggestInput<'_>, pipeline: &Pipeline) -> f64 {
    let report = analyze(&input.perf_input(pipeline));
    if report.delivered_elems > 0.0 {
        report.cycles_per_unit() / report.delivered_elems
    } else {
        report.cycles_per_unit()
    }
}

/// Validates the rewiring of `op` to `codec`: the program must re-lint
/// error-clean, and under a schema the shape verifier must accept the
/// rewired pipeline against the matching re-framed schema. Returns the
/// first rejecting code on failure.
fn validate_swap(
    input: &SuggestInput<'_>,
    op: usize,
    codec: CodecKind,
) -> Result<Pipeline, &'static str> {
    let rewired = input
        .pipeline
        .with_op_codec(op, codec)
        .map_err(|e| e.first_error().code.as_str())?;
    if let Some(schema) = input.schema {
        let schema = reframe_for(schema, input.pipeline, op, codec);
        let report = shape::verify(&rewired, &schema);
        if !report.is_clean() {
            let code = report
                .diagnostics
                .first()
                .map_or("B001", |d| d.code.as_str());
            return Err(code);
        }
    }
    Ok(rewired)
}

/// Re-declares the framing of the region operator `op` transforms
/// against: the rewiring plan re-encodes the stored stream, so its
/// schema moves with the codec. The region is found through the memory
/// operator adjacent to the transform — the producer feeding a
/// decompressor, the writer consuming a compressor.
fn reframe_for(schema: &MemorySchema, p: &Pipeline, op: usize, codec: CodecKind) -> MemorySchema {
    let mut schema = schema.clone();
    let base = match &p.operators()[op].kind {
        // Decompressor: the fetch producing its input queue.
        OperatorKind::Decompress { .. } => {
            let in_q = p.operators()[op].input;
            p.operators().iter().find_map(|o| {
                o.outputs.contains(&in_q).then_some(())?;
                match &o.kind {
                    OperatorKind::RangeFetch { base, .. } | OperatorKind::Indirect { base, .. } => {
                        Some(*base)
                    }
                    _ => None,
                }
            })
        }
        // Compressor: the writer consuming any of its output queues.
        OperatorKind::Compress { .. } => {
            let outs = &p.operators()[op].outputs;
            p.operators().iter().find_map(|o| {
                outs.contains(&o.input).then_some(())?;
                match &o.kind {
                    OperatorKind::StreamWrite { base, .. } => Some(*base),
                    OperatorKind::MemQueue { data_base, .. } => Some(*data_base),
                    _ => None,
                }
            })
        }
        _ => None,
    };
    if let Some(base) = base {
        for r in &mut schema.regions {
            if base >= r.base && base < r.base + r.bytes {
                if let Framing::Frames { codec: c, .. } = &mut r.framing {
                    *c = codec;
                }
            }
        }
    }
    schema
}

/// Runs the codec-selection pass.
///
/// Deterministic: operators are visited in definition order, candidates
/// in [`CodecKind::all`] order, and pricing is pure arithmetic over the
/// input — identical inputs produce identical reports. The metric is
/// also invariant under uniform queue-capacity scaling
/// ([`Pipeline::scale_queues`] with factor ≥ 1): flows and service rates
/// do not depend on capacities.
pub fn suggest(input: &SuggestInput<'_>) -> SuggestReport {
    let p = input.pipeline;
    let baseline_metric = metric(input, p);
    let mut diagnostics = Vec::new();
    let mut plan = Vec::new();
    let mut transforms = 0;

    for (i, opspec) in p.operators().iter().enumerate() {
        let Some((current, sort)) = op_codec(p, i) else {
            continue;
        };
        transforms += 1;
        let line = p.operator_lines()[i];
        let queue = opspec.input;

        // Price every candidate (the current codec included, as the
        // baseline this operator must beat).
        let mut priced: Vec<(f64, CodecKind)> = CodecKind::all()
            .into_iter()
            .map(|cand| {
                let m = if cand == current {
                    baseline_metric
                } else {
                    match p.with_op_codec(i, cand) {
                        Ok(rewired) => metric(input, &rewired),
                        Err(_) => f64::INFINITY,
                    }
                };
                (m, cand)
            })
            .collect();
        priced.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Walk from the predicted-best candidate down: the first that
        // validates wins; better-but-rejected candidates surface as one
        // A003 advisory (best rejected only).
        let mut suppressed: Option<(CodecKind, f64, &'static str)> = None;
        let mut chosen: Option<(CodecKind, f64)> = None;
        for &(m, cand) in &priced {
            let gain = (baseline_metric - m) / baseline_metric.max(f64::MIN_POSITIVE);
            if cand == current || gain < input.min_gain {
                break; // nothing ahead beats the threshold either
            }
            match validate_swap(input, i, cand) {
                Ok(_) => {
                    chosen = Some((cand, gain));
                    break;
                }
                Err(code) => {
                    if suppressed.is_none() {
                        suppressed = Some((cand, gain, code));
                    }
                }
            }
        }

        let current_name = codec_trajectory_name(current, sort);
        if let Some((cand, gain, code)) = suppressed {
            let cand_name = codec_trajectory_name(cand, sort && cand == CodecKind::Delta);
            diagnostics.push(
                Diagnostic::new(
                    Code::A003,
                    Site::Operator(i),
                    line,
                    format!(
                        "{cand_name} is predicted {:.0}% faster than {current_name} on queue \
                         q{queue}, but the rewired pipeline fails {code}: suggestion suppressed",
                        gain * 100.0
                    ),
                )
                .hint("the rewiring plan falls back to the best candidate that verifies"),
            );
        }
        if let Some((cand, gain)) = chosen {
            let cand_name = codec_trajectory_name(cand, sort && cand == CodecKind::Delta);
            if cand == CodecKind::None {
                diagnostics.push(
                    Diagnostic::new(
                        Code::A002,
                        Site::Operator(i),
                        line,
                        format!(
                            "compression is predicted net-negative on queue q{queue}: \
                             storing raw (identity) beats {current_name} by {:.0}%",
                            gain * 100.0
                        ),
                    )
                    .hint("drop the codec on this queue: decode cost exceeds the traffic saved"),
                );
            } else {
                diagnostics.push(
                    Diagnostic::new(
                        Code::A001,
                        Site::Operator(i),
                        line,
                        format!(
                            "{cand_name} is predicted {:.0}% faster than {current_name} on \
                             queue q{queue}",
                            gain * 100.0
                        ),
                    )
                    .hint(
                        "re-encode the region with the suggested codec and rewire the \
                         transform (apply the machine-readable plan)",
                    ),
                );
            }
            plan.push(PlanEntry {
                op: i,
                queue,
                current: current_name.to_string(),
                suggested: cand_name.to_string(),
                gain,
            });
        }
    }

    // Price the full plan applied at once (entries are per-operator, so
    // application is order-independent).
    let auto_metric = if plan.is_empty() {
        baseline_metric
    } else {
        match apply_plan(p, &plan) {
            Ok(auto) => metric(input, &auto),
            Err(_) => baseline_metric,
        }
    };

    SuggestReport {
        diagnostics,
        plan,
        transforms,
        baseline_metric,
        auto_metric,
    }
}

/// Applies a rewiring plan, returning the re-validated pipeline.
///
/// # Errors
///
/// Returns a message naming the offending entry if a plan entry refers
/// to an unknown codec name or the rewired program fails validation —
/// both impossible for plans produced by [`suggest`] on the same
/// pipeline, but plans can arrive from JSON.
pub fn apply_plan(p: &Pipeline, plan: &[PlanEntry]) -> Result<Pipeline, String> {
    let mut current = p.clone();
    for e in plan {
        let (kind, _) = spzip_compress::model::codec_from_trajectory_name(&e.suggested)
            .ok_or_else(|| format!("plan entry op {}: unknown codec {:?}", e.op, e.suggested))?;
        current = current
            .with_op_codec(e.op, kind)
            .map_err(|err| format!("plan entry op {}: {}", e.op, err.first_error()))?;
    }
    Ok(current)
}

/// Re-declares every region framing a plan re-encodes: the schema that
/// matches [`apply_plan`]'s pipeline.
pub fn rewired_schema(schema: &MemorySchema, p: &Pipeline, plan: &[PlanEntry]) -> MemorySchema {
    let mut out = schema.clone();
    for e in plan {
        if let Some((kind, _)) = spzip_compress::model::codec_from_trajectory_name(&e.suggested) {
            out = reframe_for(&out, p, e.op, kind);
        }
    }
    out
}

/// Applies a rewiring plan *with end-to-end certification*: the rewired
/// pipeline (and, when a schema is declared, its re-framed schema) is
/// proven observationally equivalent to the original by the
/// [`crate::equiv`] translation validator before it is returned. This is
/// the only application path `auto_codecs` uses — a plan that cannot be
/// certified is never applied.
///
/// # Errors
///
/// Returns the refuting diagnostics: the `V0xx` witnesses from the
/// validator, or the rewiring's own validation errors when a plan entry
/// does not even apply (unknown codec name, lint/liveness rejection).
pub fn apply_plan_certified(
    p: &Pipeline,
    schema: Option<&MemorySchema>,
    plan: &[PlanEntry],
) -> Result<(Pipeline, Option<MemorySchema>), Vec<Diagnostic>> {
    let mut current = p.clone();
    for e in plan {
        let Some((kind, _)) = spzip_compress::model::codec_from_trajectory_name(&e.suggested)
        else {
            return Err(vec![Diagnostic::new(
                Code::V002,
                Site::Operator(e.op),
                None,
                format!(
                    "plan entry op {} names unknown codec {:?}: no inverse transform exists",
                    e.op, e.suggested
                ),
            )]);
        };
        current = current
            .with_op_codec(e.op, kind)
            .map_err(|err| err.diagnostics().to_vec())?;
    }
    let rewired = schema.map(|s| rewired_schema(s, p, plan));
    let report = match (schema, &rewired) {
        (Some(os), Some(rs)) => {
            crate::equiv::validate(&crate::equiv::EquivInput::with_schemas(p, &current, os, rs))
        }
        _ => crate::equiv::validate(&crate::equiv::EquivInput::new(p, &current)),
    };
    if !report.is_clean() {
        return Err(report.diagnostics());
    }
    Ok((current, rewired))
}

/// Demotes a report whose plan failed certification: the plan is cleared
/// (so it can never be applied), the predicted auto metric collapses to
/// the baseline, and an `A003` advisory citing the refuting code is
/// appended — the same suppressed-suggestion surface a per-candidate
/// rejection uses, so downstream tooling needs no new case.
pub fn demote_uncertified(report: &mut SuggestReport, rejection: &[Diagnostic]) {
    let code = rejection
        .iter()
        .find(|d| d.severity() == crate::lint::Severity::Error)
        .map_or("V001", |d| d.code.as_str());
    let entries = report.plan.len();
    report.plan.clear();
    report.auto_metric = report.baseline_metric;
    report.diagnostics.push(
        Diagnostic::new(
            Code::A003,
            Site::Program,
            None,
            format!(
                "auto-codec plan ({entries} entries) fails translation validation with {code}: \
                 plan suppressed, baseline pipeline kept",
            ),
        )
        .hint("an uncertified rewrite is never applied; re-frame storage or fix the plan"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::{PipelineBuilder, RangeInput};
    use crate::shape::RegionSchema;
    use spzip_compress::model::{CodecRates, RateTable};
    use spzip_mem::DataClass;

    /// Compressed-adjacency traversal: byte fetch -> decompress -> core.
    fn decompress_pipeline(codec: CodecKind, elem: u8) -> Pipeline {
        let mut b = PipelineBuilder::new();
        let input = b.queue(16);
        let bytes = b.queue(32);
        let vals = b.queue(32);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0x1000,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(1),
                class: DataClass::AdjacencyMatrix,
            },
            input,
            vec![bytes],
        );
        b.operator(
            OperatorKind::Decompress {
                codec,
                elem_bytes: elem,
            },
            bytes,
            vec![vals],
        );
        b.build().unwrap()
    }

    /// Write-side compressor: core values -> compress -> streamwrite.
    fn compress_pipeline(codec: CodecKind) -> Pipeline {
        let mut b = PipelineBuilder::new();
        let vals = b.queue(32);
        let bytes = b.queue(32);
        b.operator(
            OperatorKind::Compress {
                codec,
                elem_bytes: 4,
                sort_chunks: false,
            },
            vals,
            vec![bytes],
        );
        b.operator(
            OperatorKind::StreamWrite {
                base: 0x8000,
                class: DataClass::Updates,
            },
            bytes,
            vec![],
        );
        b.build().unwrap()
    }

    fn schema_for(codec: CodecKind) -> MemorySchema {
        let mut s = MemorySchema::new();
        s.add_region(RegionSchema::framed("cadj", 0x1000, 0x4000, codec, 4, None));
        s.declare_input(
            0,
            shape::InputDomain::Ranges {
                region: "cadj".to_string(),
            },
        );
        s
    }

    #[test]
    fn suggestions_are_deterministic() {
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let input = SuggestInput::new(&p);
        let a = suggest(&input);
        let b = suggest(&input);
        assert_eq!(a, b);
    }

    #[test]
    fn a001_fires_when_a_faster_codec_exists() {
        // RLE on graph-typical ids is a poor fit (short runs); delta is
        // predicted far denser, so the advisory fires.
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let report = suggest(&SuggestInput::new(&p));
        assert_eq!(report.transforms, 1);
        assert!(
            report.diagnostics.iter().any(|d| d.code == Code::A001),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(report.plan.len(), 1);
        assert_eq!(report.plan[0].current, "rle");
        assert!(report.auto_metric < report.baseline_metric);
    }

    #[test]
    fn well_chosen_codec_is_clean() {
        // A pipeline already carrying the predicted-best codec for its
        // profile has nothing to suggest: under the default 4-byte
        // profile the model prices bpc32 densest.
        let p = decompress_pipeline(CodecKind::Bpc32, 4);
        let report = suggest(&SuggestInput::new(&p));
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.auto_metric, report.baseline_metric);
    }

    #[test]
    fn a002_fires_when_identity_wins() {
        // An incompressible stream behind a severely rate-handicapped
        // codec: storing raw is predicted faster.
        let p = compress_pipeline(CodecKind::Delta);
        let mut input = SuggestInput::new(&p);
        input.profiles.insert(0, StreamProfile::incompressible(4));
        let mut rates = RateTable::nominal();
        rates.set(
            CodecKind::None,
            CodecRates {
                decode_gbps: 100.0,
                encode_gbps: 100.0,
            },
        );
        input.params.rates = rates;
        let report = suggest(&input);
        assert!(
            report.diagnostics.iter().any(|d| d.code == Code::A002),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(report.plan[0].suggested, "identity");
    }

    #[test]
    fn a003_suppresses_shape_rejected_swaps() {
        // 8-byte stream where bpc64 would be priced best, but the schema
        // decodes 8-byte elements while bpc32 (say) mismatches widths.
        // Construct directly: current delta on an 8-byte stream with a
        // schema; bpc32's natural width (4) trips B006 if it prices
        // first, and the plan falls back to a codec that verifies.
        let p = decompress_pipeline(CodecKind::Rle, 8);
        let schema = {
            let mut s = MemorySchema::new();
            s.add_region(RegionSchema::framed(
                "cadj",
                0x1000,
                0x4000,
                CodecKind::Rle,
                8,
                None,
            ));
            s.declare_input(
                0,
                shape::InputDomain::Ranges {
                    region: "cadj".to_string(),
                },
            );
            s
        };
        let mut input = SuggestInput::with_schema(&p, &schema);
        // Handicap everything except bpc32 so the width-incompatible
        // candidate prices strictly best.
        let mut rates = RateTable::nominal();
        for k in [
            CodecKind::None,
            CodecKind::Delta,
            CodecKind::Bpc64,
            CodecKind::Rle,
        ] {
            rates.set(
                k,
                CodecRates {
                    decode_gbps: 0.05,
                    encode_gbps: 0.05,
                },
            );
        }
        rates.set(
            CodecKind::Bpc32,
            CodecRates {
                decode_gbps: 10.0,
                encode_gbps: 10.0,
            },
        );
        input.params.rates = rates;
        let report = suggest(&input);
        assert!(
            report.diagnostics.iter().any(|d| d.code == Code::A003),
            "{:?}",
            report.diagnostics
        );
        // Whatever the plan holds must verify end to end.
        if !report.plan.is_empty() {
            let auto = apply_plan(&p, &report.plan).unwrap();
            let auto_schema = rewired_schema(&schema, &p, &report.plan);
            assert!(shape::verify(&auto, &auto_schema).is_clean());
        }
    }

    #[test]
    fn plan_roundtrips_through_apply() {
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let schema = schema_for(CodecKind::Rle);
        let input = SuggestInput::with_schema(&p, &schema);
        let report = suggest(&input);
        assert!(!report.plan.is_empty());
        let auto = apply_plan(&p, &report.plan).unwrap();
        let auto_schema = rewired_schema(&schema, &p, &report.plan);
        assert!(shape::verify(&auto, &auto_schema).is_clean());
        // Re-suggesting on the rewired pipeline proposes nothing better.
        let re = suggest(&SuggestInput::with_schema(&auto, &auto_schema));
        assert!(re.plan.is_empty(), "{:?}", re.plan);
    }

    #[test]
    fn scale_invariance_under_capacity_scaling() {
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let base = suggest(&SuggestInput::new(&p));
        for factor in [1.0, 2.0, 4.0] {
            let scaled = p.scale_queues(factor).unwrap();
            let report = suggest(&SuggestInput::new(&scaled));
            assert_eq!(report.plan, base.plan, "factor {factor}");
            assert_eq!(report.diagnostics.len(), base.diagnostics.len());
        }
    }

    #[test]
    fn plan_json_is_machine_readable() {
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let report = suggest(&SuggestInput::new(&p));
        let json = report.plan_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"current\":\"rle\""), "{json}");
        assert!(json.contains("\"suggested\":"), "{json}");
        assert!(json.contains("\"gain\":"), "{json}");
    }

    #[test]
    fn advisories_are_warning_severity() {
        let p = decompress_pipeline(CodecKind::Rle, 4);
        let report = suggest(&SuggestInput::new(&p));
        for d in &report.diagnostics {
            assert_eq!(d.severity(), crate::lint::Severity::Warning);
        }
    }
}
