//! Synthetic address space holding the application's real data.
//!
//! The timing models in `spzip-mem` are tag-only; the functional engine and
//! the applications need actual bytes to traverse, compress, and verify.
//! [`MemoryImage`] provides both: named, class-tagged regions at 4 KB-aligned
//! synthetic addresses, with typed read/write accessors. It also implements
//! the compressed-memory-hierarchy baseline's [`CompressibilityOracle`] by
//! running BDI over the real line contents.

use spzip_mem::cmh::CompressibilityOracle;
use spzip_mem::DataClass;
use std::fmt;

/// Region alignment (fresh regions start on a 4 KB page).
const REGION_ALIGN: u64 = 4096;

#[derive(Debug)]
struct Region {
    base: u64,
    data: Vec<u8>,
    class: DataClass,
    name: String,
}

/// A synthetic, sparse address space of named regions.
///
/// # Examples
///
/// ```
/// use spzip_core::memory::MemoryImage;
/// use spzip_mem::DataClass;
///
/// let mut img = MemoryImage::new();
/// let base = img.alloc("offsets", 64, DataClass::AdjacencyMatrix);
/// img.write_u64(base, 42);
/// assert_eq!(img.read_u64(base), 42);
/// assert_eq!(img.class_of(base), DataClass::AdjacencyMatrix);
/// ```
#[derive(Debug, Default)]
pub struct MemoryImage {
    regions: Vec<Region>,
    next_base: u64,
}

impl MemoryImage {
    /// Creates an empty image. Address 0 is left unmapped to catch stray
    /// null-ish accesses.
    pub fn new() -> Self {
        MemoryImage {
            regions: Vec::new(),
            next_base: REGION_ALIGN,
        }
    }

    /// Allocates a zeroed region of `bytes`, returning its base address.
    pub fn alloc(&mut self, name: &str, bytes: u64, class: DataClass) -> u64 {
        let base = self.next_base;
        self.next_base = (base + bytes).div_ceil(REGION_ALIGN) * REGION_ALIGN + REGION_ALIGN; // one guard page between regions
        self.regions.push(Region {
            base,
            data: vec![0u8; bytes as usize],
            class,
            name: name.to_string(),
        });
        base
    }

    /// Allocates a region initialized from `data`.
    pub fn alloc_from(&mut self, name: &str, data: &[u8], class: DataClass) -> u64 {
        let base = self.alloc(name, data.len() as u64, class);
        self.write_bytes(base, data);
        base
    }

    /// Allocates a region holding `values` as little-endian u64s.
    pub fn alloc_u64s(&mut self, name: &str, values: &[u64], class: DataClass) -> u64 {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.alloc_from(name, &bytes, class)
    }

    /// Allocates a region holding `values` as little-endian u32s.
    pub fn alloc_u32s(&mut self, name: &str, values: &[u32], class: DataClass) -> u64 {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.alloc_from(name, &bytes, class)
    }

    fn region_of(&self, addr: u64) -> Option<&Region> {
        // Regions are allocated in ascending base order.
        let idx = self.regions.partition_point(|r| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        (addr < r.base + r.data.len() as u64).then_some(r)
    }

    fn region_of_mut(&mut self, addr: u64) -> Option<&mut Region> {
        let idx = self.regions.partition_point(|r| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let r = &mut self.regions[idx - 1];
        (addr < r.base + r.data.len() as u64).then_some(r)
    }

    /// The traffic class of the region containing `addr`
    /// ([`DataClass::Other`] if unmapped).
    pub fn class_of(&self, addr: u64) -> DataClass {
        self.region_of(addr).map_or(DataClass::Other, |r| r.class)
    }

    /// The name of the region containing `addr`, if mapped.
    pub fn region_name(&self, addr: u64) -> Option<&str> {
        self.region_of(addr).map(|r| r.name.as_str())
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on an unmapped or out-of-bounds access (a bug in a DCL
    /// program or application).
    pub fn read_bytes_into(&self, addr: u64, out: &mut [u8]) {
        let r = self
            .region_of(addr)
            .unwrap_or_else(|| panic!("read of unmapped address {addr:#x}"));
        let off = (addr - r.base) as usize;
        assert!(
            off + out.len() <= r.data.len(),
            "read of {} bytes at {addr:#x} overruns region '{}'",
            out.len(),
            r.name
        );
        out.copy_from_slice(&r.data[off..off + out.len()]);
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_bytes_into(addr, &mut out);
        out
    }

    /// Writes `data` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on an unmapped or out-of-bounds access.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let r = self
            .region_of_mut(addr)
            .unwrap_or_else(|| panic!("write to unmapped address {addr:#x}"));
        let off = (addr - r.base) as usize;
        assert!(
            off + data.len() <= r.data.len(),
            "write of {} bytes at {addr:#x} overruns region '{}'",
            data.len(),
            r.name
        );
        r.data[off..off + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian unsigned value of `bytes` (1..=8) at `addr`.
    pub fn read_uint(&self, addr: u64, bytes: u8) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes_into(addr, &mut buf[..bytes as usize]);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian unsigned value of `bytes` (1..=8) at `addr`.
    pub fn write_uint(&mut self, addr: u64, bytes: u8, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes()[..bytes as usize]);
    }

    /// Reads a u64 at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a u64 at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_uint(addr, 8, value)
    }

    /// Reads a u32 at `addr`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a u32 at `addr`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_uint(addr, 4, value as u64)
    }

    /// Reads an f64 at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64 at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits())
    }

    /// Total mapped bytes across regions.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.data.len() as u64).sum()
    }

    /// Snapshots the BDI-compressed size of every mapped line — the static
    /// compressibility profile the compressed-memory-hierarchy baseline
    /// (Fig. 22) uses as its oracle.
    pub fn bdi_profile(&self) -> std::collections::HashMap<u64, u32> {
        use spzip_mem::cmh::CompressibilityOracle;
        let mut out = std::collections::HashMap::new();
        for r in &self.regions {
            let first = r.base / spzip_mem::LINE_BYTES;
            let last = (r.base + r.data.len() as u64).div_ceil(spzip_mem::LINE_BYTES);
            for line in first..last {
                out.insert(line, self.bdi_bytes(line));
            }
        }
        out
    }
}

impl fmt::Display for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MemoryImage ({} regions, {} bytes):",
            self.regions.len(),
            self.footprint_bytes()
        )?;
        for r in &self.regions {
            writeln!(
                f,
                "  {:#012x} {:>10} B {:<18} {}",
                r.base,
                r.data.len(),
                r.class.to_string(),
                r.name
            )?;
        }
        Ok(())
    }
}

impl CompressibilityOracle for MemoryImage {
    fn bdi_bytes(&self, line_addr: u64) -> u32 {
        let addr = line_addr * spzip_mem::LINE_BYTES;
        let Some(r) = self.region_of(addr) else {
            return 64; // unmapped: treat as incompressible
        };
        let off = (addr - r.base) as usize;
        let mut line = [0u8; 64];
        let avail = (r.data.len() - off).min(64);
        line[..avail].copy_from_slice(&r.data[off..off + avail]);
        spzip_compress::bdi::compressed_line_bytes(&line) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut img = MemoryImage::new();
        let a = img.alloc("a", 128, DataClass::SourceVertex);
        img.write_u32(a + 4, 0xDEAD);
        img.write_f64(a + 8, 2.5);
        assert_eq!(img.read_u32(a + 4), 0xDEAD);
        assert_eq!(img.read_f64(a + 8), 2.5);
        assert_eq!(img.read_u32(a), 0, "zero-initialized");
    }

    #[test]
    fn regions_are_aligned_and_separated() {
        let mut img = MemoryImage::new();
        let a = img.alloc("a", 100, DataClass::Other);
        let b = img.alloc("b", 100, DataClass::Updates);
        assert_eq!(a % REGION_ALIGN, 0);
        assert_eq!(b % REGION_ALIGN, 0);
        assert!(b >= a + 100 + REGION_ALIGN, "guard page between regions");
        assert_eq!(img.class_of(a), DataClass::Other);
        assert_eq!(img.class_of(b), DataClass::Updates);
        assert_eq!(img.region_name(b), Some("b"));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_read_panics() {
        let img = MemoryImage::new();
        img.read_u32(12);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_write_panics() {
        let mut img = MemoryImage::new();
        let a = img.alloc("a", 8, DataClass::Other);
        img.write_bytes(a + 4, &[0u8; 8]);
    }

    #[test]
    fn typed_array_allocs() {
        let mut img = MemoryImage::new();
        let a = img.alloc_u64s("u64s", &[1, 2, 3], DataClass::Other);
        assert_eq!(img.read_u64(a + 16), 3);
        let b = img.alloc_u32s("u32s", &[7, 8], DataClass::Other);
        assert_eq!(img.read_u32(b + 4), 8);
    }

    #[test]
    fn bdi_oracle_reads_real_contents() {
        let mut img = MemoryImage::new();
        let zeros = img.alloc("zeros", 64, DataClass::Other);
        assert_eq!(img.bdi_bytes(zeros / 64), 1);
        let scattered = img.alloc_u64s(
            "ptrs",
            &[
                0x123456789A,
                0x3333AAAA5555,
                0x77,
                0x9999999999,
                0xABCDEF0123,
                0x1111111111,
                0xFEDCBA9876,
                0x1356246802,
            ],
            DataClass::Other,
        );
        assert!(img.bdi_bytes(scattered / 64) > 32);
        // Unmapped lines are incompressible.
        assert_eq!(img.bdi_bytes(1), 64);
    }

    #[test]
    fn display_lists_regions() {
        let mut img = MemoryImage::new();
        img.alloc("neighbors", 64, DataClass::AdjacencyMatrix);
        let s = img.to_string();
        assert!(s.contains("neighbors"));
        assert!(s.contains("AdjacencyMatrix"));
    }

    #[test]
    fn footprint_counts() {
        let mut img = MemoryImage::new();
        img.alloc("a", 100, DataClass::Other);
        img.alloc("b", 28, DataClass::Other);
        assert_eq!(img.footprint_bytes(), 128);
    }
}
