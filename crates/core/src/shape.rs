//! Shape-and-bounds verification: abstract interpretation of DCL programs
//! against a declared memory layout.
//!
//! The [`lint`](crate::lint) pass checks a pipeline's *structure* (queue
//! wiring, burst sizes, marker discipline); it cannot know whether an
//! indirection chain stays inside the arrays it traverses or whether a
//! decompressor is paired with the codec that actually framed its input
//! region — those hazards corrupt traffic silently and, until now, were
//! only caught dynamically by the SimSanitizer. [`verify`] closes that gap
//! statically: callers declare a [`MemorySchema`] (per-region extent,
//! element width, codec framing, and value bounds, plus the shape of every
//! stream the core feeds in), and the verifier propagates an abstract
//! [`ShapeDomain`] along every queue in topological order, checking at
//! each operator that
//!
//! * every [`RangeFetch`](OperatorKind::RangeFetch) /
//!   [`Indirect`](OperatorKind::Indirect) index stream is provably
//!   in-bounds for the region its base resolves to (`B001`, `B002`,
//!   `B007`),
//! * element widths agree with the region's declared width and across
//!   every queue edge, including decompressed widths and MemQueue bin
//!   payloads (`B003`, `B006`),
//! * (de)compression operators see exactly the framing the producing
//!   region or upstream compressor declared — right codec, framed versus
//!   raw (`B004`, `B005`),
//! * MemQueue bin footprints (data and tail metadata) fit their regions
//!   (`B008`).
//!
//! Findings surface as the stable `B001`–`B008` diagnostic family through
//! the shared [`Diagnostic`] machinery, so `dcl-lint` renders and exports
//! them exactly like `E`/`W`/`P` codes. Like the `P` codes, `B` codes are
//! emitted only by this module — never by `lint()` — so
//! [`PipelineBuilder::build`](crate::dcl::PipelineBuilder::build) is
//! unaffected; unlike `P` codes they are error severity, because a shape
//! violation means the program reads or writes memory it does not own.
//!
//! The abstract domain per queue ([`ShapeDomain`]) tracks what flows on
//! the wire: raw elements (source region, width, an inclusive upper bound
//! on values when the region declares one), codec-framed bytes (codec,
//! decoded width, decoded bound), or `(bin, payload)` pairs feeding a
//! buffer-mode MemQueue. Index bounds use one convention throughout: a
//! stream's `max` is the largest *value* it can carry. Range endpoints are
//! exclusive, so a fetch driven by values `<= max` touches at most
//! `max * elem_bytes` bytes; an indirection reads the element *at* the
//! value, so it touches `(max + fetched_elems) * elem_bytes`.

use crate::dcl::{MemQueueMode, OperatorKind, Pipeline};
use crate::lint::{Code, Diagnostic, Site};
use crate::QueueId;
use spzip_compress::CodecKind;
use std::collections::BTreeMap;
use std::fmt;

/// Version of the shape verifier's rule set, bumped whenever a check is
/// added, removed, or its semantics change. Included in the bench driver's
/// cache fingerprint so cached results invalidate when analysis changes.
pub const SHAPE_VERSION: u32 = 1;

/// How the bytes stored in a region are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Uncompressed elements of the region's declared width.
    Raw,
    /// Concatenated codec frames (the bin / compressed-slice layout).
    Frames {
        /// The codec that produced (and can decode) the frames.
        codec: CodecKind,
        /// Width of the elements a decode yields.
        decoded_elem_bytes: u8,
        /// Inclusive upper bound on decoded values, when known.
        decoded_max: Option<u64>,
    },
}

/// One region of the declared memory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSchema {
    /// Region name (unique within a schema; mirrors the
    /// [`MemoryImage`](crate::memory::MemoryImage) region name).
    pub name: String,
    /// Base address.
    pub base: u64,
    /// Extent in bytes.
    pub bytes: u64,
    /// Element width as the fetcher sees it (1 for framed byte blobs).
    pub elem_bytes: u8,
    /// Inclusive upper bound on stored element values, when the layout
    /// guarantees one (e.g. an offsets array bounded by the edge count).
    /// Only meaningful for [`Framing::Raw`] regions.
    pub max_value: Option<u64>,
    /// How the stored bytes are encoded.
    pub framing: Framing,
}

impl RegionSchema {
    /// A raw region with no declared value bound.
    pub fn raw(name: &str, base: u64, bytes: u64, elem_bytes: u8) -> Self {
        RegionSchema {
            name: name.to_string(),
            base,
            bytes,
            elem_bytes,
            max_value: None,
            framing: Framing::Raw,
        }
    }

    /// A raw region whose element values are bounded by `max_value`
    /// (inclusive) — an index array.
    pub fn raw_bounded(name: &str, base: u64, bytes: u64, elem_bytes: u8, max_value: u64) -> Self {
        RegionSchema {
            max_value: Some(max_value),
            ..Self::raw(name, base, bytes, elem_bytes)
        }
    }

    /// A region holding concatenated `codec` frames (wire width 1).
    pub fn framed(
        name: &str,
        base: u64,
        bytes: u64,
        codec: CodecKind,
        decoded_elem_bytes: u8,
        decoded_max: Option<u64>,
    ) -> Self {
        RegionSchema {
            name: name.to_string(),
            base,
            bytes,
            elem_bytes: 1,
            max_value: None,
            framing: Framing::Frames {
                codec,
                decoded_elem_bytes,
                decoded_max,
            },
        }
    }

    /// Number of whole elements the region holds.
    pub fn elems(&self) -> u64 {
        if self.elem_bytes == 0 {
            0
        } else {
            self.bytes / self.elem_bytes as u64
        }
    }
}

/// The declared shape of a stream the core enqueues into one of the
/// pipeline's input queues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputDomain {
    /// Element-index range endpoints into the named region: `(start, end)`
    /// pairs (or consecutive boundaries) with `end <= region.elems()`.
    Ranges {
        /// Target region name.
        region: String,
    },
    /// Plain values the pipeline transforms but never uses as addresses.
    Values {
        /// Enqueued element width.
        elem_bytes: u8,
        /// Inclusive upper bound on the values, when known.
        max: Option<u64>,
    },
    /// Alternating `(bin id, payload)` items feeding a buffer-mode
    /// MemQueue; `Marker(bin)` closes a bin.
    BinPairs {
        /// Largest bin id the core will name (inclusive).
        max_bin: u32,
        /// Payload element width.
        elem_bytes: u8,
    },
}

/// The declared memory layout a pipeline runs against: regions plus the
/// shape of every core-fed input queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySchema {
    /// Declared regions, in any order.
    pub regions: Vec<RegionSchema>,
    /// Declared core-input stream shapes, by queue id.
    pub inputs: BTreeMap<QueueId, InputDomain>,
}

impl MemorySchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region.
    pub fn add_region(&mut self, region: RegionSchema) {
        self.regions.push(region);
    }

    /// Declares the shape of the stream the core feeds into queue `q`.
    pub fn declare_input(&mut self, q: QueueId, domain: InputDomain) {
        self.inputs.insert(q, domain);
    }

    /// Looks a region up by name.
    pub fn region_named(&self, name: &str) -> Option<&RegionSchema> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// The region containing `addr`, if any.
    pub fn region_containing(&self, addr: u64) -> Option<&RegionSchema> {
        self.regions
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.bytes)
    }
}

/// The abstract value the verifier tracks per queue: what flows on the
/// wire between two operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeDomain {
    /// Raw elements, optionally traced to a source region and bounded.
    Elements {
        /// Region the elements were loaded from (`None` for decompressed
        /// or core-synthesized values).
        region: Option<String>,
        /// Element width on the wire.
        elem_bytes: u8,
        /// Inclusive upper bound on values, when known.
        max: Option<u64>,
    },
    /// Codec-framed bytes (wire width 1).
    Bytes {
        /// Codec that framed the stream.
        codec: CodecKind,
        /// Width of the elements a decode yields.
        decoded_elem_bytes: u8,
        /// Inclusive upper bound on decoded values, when known.
        decoded_max: Option<u64>,
    },
    /// Alternating `(bin id, payload)` items for a buffer-mode MemQueue.
    BinPairs {
        /// Largest bin id (inclusive).
        max_bin: u32,
        /// Payload element width.
        elem_bytes: u8,
    },
    /// Undeclared core input: nothing is known (reported as `B007`).
    Unknown,
}

impl fmt::Display for ShapeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeDomain::Elements {
                region,
                elem_bytes,
                max,
            } => {
                write!(f, "raw w{elem_bytes}")?;
                if let Some(m) = max {
                    write!(f, " max={m}")?;
                }
                if let Some(r) = region {
                    write!(f, " @{r}")?;
                }
                Ok(())
            }
            ShapeDomain::Bytes {
                codec,
                decoded_elem_bytes,
                decoded_max,
            } => {
                write!(f, "frames({codec})->w{decoded_elem_bytes}")?;
                if let Some(m) = decoded_max {
                    write!(f, " max={m}")?;
                }
                Ok(())
            }
            ShapeDomain::BinPairs {
                max_bin,
                elem_bytes,
            } => write!(f, "binpairs<={max_bin} w{elem_bytes}"),
            ShapeDomain::Unknown => write!(f, "?"),
        }
    }
}

/// Outcome of one [`verify`] run.
#[derive(Debug, Clone, Default)]
pub struct ShapeReport {
    /// `B0xx` findings, in operator order.
    pub diagnostics: Vec<Diagnostic>,
    /// The inferred domain per queue id (`None` for queues no declared
    /// input or reachable producer feeds).
    pub queue_domains: Vec<Option<ShapeDomain>>,
}

impl ShapeReport {
    /// True when no `B` diagnostic was emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Short label for queue `q`'s inferred domain (dot annotation).
    pub fn domain_label(&self, q: QueueId) -> String {
        match self.queue_domains.get(q as usize) {
            Some(Some(d)) => d.to_string(),
            _ => "unfed".to_string(),
        }
    }
}

/// How many elements one firing of an [`Indirect`](OperatorKind::Indirect)
/// reads at its computed address.
fn indirect_elems(pair: bool) -> u64 {
    if pair {
        2
    } else {
        1
    }
}

/// The element width `codec` is defined over, when it is width-specific.
fn codec_elem_bytes(codec: CodecKind) -> Option<u8> {
    codec.natural_elem_bytes()
}

struct Verifier<'a> {
    schema: &'a MemorySchema,
    lines: &'a [Option<u32>],
    diags: Vec<Diagnostic>,
}

impl Verifier<'_> {
    fn emit(&mut self, code: Code, op: usize, message: String, hint: &str) {
        let d = Diagnostic::new(
            code,
            Site::Operator(op),
            self.lines.get(op).copied().flatten(),
            message,
        )
        .hint(hint);
        // One fault can surface through several outputs of the same
        // operator; keep one diagnostic per (code, site, message).
        if !self.diags.contains(&d) {
            self.diags.push(d);
        }
    }

    /// Resolves `base` to a region, reporting `B001` at `op` otherwise.
    fn resolve(&mut self, op: usize, what: &str, base: u64) -> Option<RegionSchema> {
        match self.schema.region_containing(base) {
            Some(r) => Some(r.clone()),
            None => {
                self.emit(
                    Code::B001,
                    op,
                    format!("{what} base {base:#x} lies outside every declared region"),
                    "point the operator at a declared region, or add the region to the schema",
                );
                None
            }
        }
    }

    /// Checks that index values `<= max` striding `elem_bytes` from `base`
    /// stay inside `r`; `extra_elems` accounts for elements read *at* the
    /// index (indirections) versus exclusive range endpoints (0).
    #[allow(clippy::too_many_arguments)]
    fn check_bounds(
        &mut self,
        op: usize,
        what: &str,
        r: &RegionSchema,
        base: u64,
        max: u64,
        elem_bytes: u8,
        extra_elems: u64,
    ) {
        let offset = base - r.base;
        let need = offset + (max + extra_elems) * elem_bytes as u64;
        if need > r.bytes {
            self.emit(
                Code::B002,
                op,
                format!(
                    "{what} can reach byte {need} of region '{}' ({} bytes): \
                     index values up to {max} stride {elem_bytes} B from offset {offset}",
                    r.name, r.bytes
                ),
                "shrink the index bound, fix the base, or grow the region",
            );
        }
    }

    /// Checks the fetched element width against the region's declaration.
    fn check_width(&mut self, op: usize, what: &str, r: &RegionSchema, elem_bytes: u8) {
        if elem_bytes != r.elem_bytes {
            self.emit(
                Code::B003,
                op,
                format!(
                    "{what} moves {elem_bytes}-byte elements but region '{}' declares \
                     {}-byte elements",
                    r.name, r.elem_bytes
                ),
                "match the operator's elem width to the region's declared width",
            );
        }
    }

    /// The domain a fetch from `r` at width `elem_bytes` produces.
    fn fetched_domain(&self, r: &RegionSchema, elem_bytes: u8) -> ShapeDomain {
        match r.framing {
            Framing::Frames {
                codec,
                decoded_elem_bytes,
                decoded_max,
            } => ShapeDomain::Bytes {
                codec,
                decoded_elem_bytes,
                decoded_max,
            },
            Framing::Raw => ShapeDomain::Elements {
                region: Some(r.name.clone()),
                elem_bytes,
                max: r.max_value,
            },
        }
    }

    /// Requires an index-capable input: raw values with a provable bound.
    /// Returns the bound, or `None` when further checks are impossible.
    fn index_bound(&mut self, op: usize, what: &str, d: &ShapeDomain) -> Option<u64> {
        match d {
            ShapeDomain::Elements { max: Some(m), .. } => Some(*m),
            ShapeDomain::Elements { max: None, .. } => {
                self.emit(
                    Code::B007,
                    op,
                    format!("{what} is driven by an index stream with no provable bound"),
                    "declare a max on the feeding region or input domain",
                );
                None
            }
            ShapeDomain::Bytes { codec, .. } => {
                self.emit(
                    Code::B005,
                    op,
                    format!("{what} consumes {codec}-framed bytes as index values"),
                    "decompress the stream before using it as indices",
                );
                None
            }
            ShapeDomain::BinPairs { .. } => {
                self.emit(
                    Code::B005,
                    op,
                    format!("{what} consumes a (bin, payload) pair stream as index values"),
                    "feed the pair stream to a buffer-mode MemQueue instead",
                );
                None
            }
            ShapeDomain::Unknown => None,
        }
    }

    /// Interprets one operator under input domain `d`, returning the
    /// domain of its outputs.
    fn transfer(&mut self, op: usize, kind: &OperatorKind, d: &ShapeDomain) -> ShapeDomain {
        match kind {
            OperatorKind::RangeFetch {
                base, elem_bytes, ..
            } => {
                let bound = self.index_bound(op, "range fetch", d);
                let Some(r) = self.resolve(op, "range fetch", *base) else {
                    return ShapeDomain::Elements {
                        region: None,
                        elem_bytes: *elem_bytes,
                        max: None,
                    };
                };
                self.check_width(op, "range fetch", &r, *elem_bytes);
                if let Some(m) = bound {
                    // Endpoints are exclusive: values <= m read [s, e) with
                    // e <= m, touching at most m * elem bytes.
                    self.check_bounds(op, "range fetch", &r, *base, m, *elem_bytes, 0);
                }
                self.fetched_domain(&r, *elem_bytes)
            }
            OperatorKind::Indirect {
                base,
                elem_bytes,
                pair,
                ..
            } => {
                let bound = self.index_bound(op, "indirection", d);
                let Some(r) = self.resolve(op, "indirection", *base) else {
                    return ShapeDomain::Elements {
                        region: None,
                        elem_bytes: *elem_bytes,
                        max: None,
                    };
                };
                self.check_width(op, "indirection", &r, *elem_bytes);
                if let Some(m) = bound {
                    self.check_bounds(
                        op,
                        "indirection",
                        &r,
                        *base,
                        m,
                        *elem_bytes,
                        indirect_elems(*pair),
                    );
                }
                self.fetched_domain(&r, *elem_bytes)
            }
            OperatorKind::Decompress { codec, elem_bytes } => {
                let decoded_max = match d {
                    ShapeDomain::Bytes {
                        codec: framed,
                        decoded_elem_bytes,
                        decoded_max,
                    } => {
                        if framed != codec {
                            self.emit(
                                Code::B004,
                                op,
                                format!(
                                    "decompressor expects {codec} frames but the stream was \
                                     framed by {framed}"
                                ),
                                "match the decompressor codec to the producing region",
                            );
                        }
                        if decoded_elem_bytes != elem_bytes {
                            self.emit(
                                Code::B006,
                                op,
                                format!(
                                    "decompressor emits {elem_bytes}-byte elements but the \
                                     frames decode to {decoded_elem_bytes}-byte elements"
                                ),
                                "match the decompressor elem width to the framed data",
                            );
                        }
                        *decoded_max
                    }
                    ShapeDomain::Unknown => None,
                    other => {
                        self.emit(
                            Code::B005,
                            op,
                            format!("decompressor fed an unframed stream ({other})"),
                            "fetch from a framed region (or drop the decompressor)",
                        );
                        None
                    }
                };
                if let Some(w) = codec_elem_bytes(*codec) {
                    if w != *elem_bytes {
                        self.emit(
                            Code::B006,
                            op,
                            format!("{codec} decodes {w}-byte elements, not {elem_bytes}-byte"),
                            "use the codec's element width",
                        );
                    }
                }
                ShapeDomain::Elements {
                    region: None,
                    elem_bytes: *elem_bytes,
                    max: decoded_max,
                }
            }
            OperatorKind::Compress {
                codec, elem_bytes, ..
            } => {
                let max = match d {
                    ShapeDomain::Elements {
                        elem_bytes: w, max, ..
                    } => {
                        if w != elem_bytes {
                            self.emit(
                                Code::B006,
                                op,
                                format!(
                                    "compressor chunks {elem_bytes}-byte elements but its input \
                                     stream carries {w}-byte elements"
                                ),
                                "match the compressor elem width to its input",
                            );
                        }
                        *max
                    }
                    ShapeDomain::Unknown => None,
                    other => {
                        self.emit(
                            Code::B005,
                            op,
                            format!("compressor fed an already-framed stream ({other})"),
                            "compress raw values only",
                        );
                        None
                    }
                };
                if let Some(w) = codec_elem_bytes(*codec) {
                    if w != *elem_bytes {
                        self.emit(
                            Code::B006,
                            op,
                            format!("{codec} encodes {w}-byte elements, not {elem_bytes}-byte"),
                            "use the codec's element width",
                        );
                    }
                }
                ShapeDomain::Bytes {
                    codec: *codec,
                    decoded_elem_bytes: *elem_bytes,
                    decoded_max: max,
                }
            }
            OperatorKind::StreamWrite { base, .. } => {
                if let Some(r) = self.resolve(op, "stream write", *base) {
                    self.check_write(op, "stream write", &r, d);
                }
                ShapeDomain::Unknown
            }
            OperatorKind::MemQueue {
                num_queues,
                data_base,
                stride,
                meta_addr,
                elem_bytes,
                mode,
                ..
            } => {
                if let Some(r) = self.resolve(op, "MemQueue data", *data_base) {
                    let need = (*data_base - r.base) + *num_queues as u64 * stride;
                    if need > r.bytes {
                        self.emit(
                            Code::B008,
                            op,
                            format!(
                                "MemQueue spans {num_queues} bins x {stride} B from offset {} — \
                                 {need} bytes, but region '{}' holds {}",
                                *data_base - r.base,
                                r.name,
                                r.bytes
                            ),
                            "shrink the bin count/stride or grow the region",
                        );
                    }
                    match mode {
                        MemQueueMode::Buffer => match d {
                            ShapeDomain::BinPairs {
                                max_bin,
                                elem_bytes: w,
                            } => {
                                if *max_bin >= *num_queues {
                                    self.emit(
                                        Code::B002,
                                        op,
                                        format!(
                                            "bin ids reach {max_bin} but the MemQueue declares \
                                             only {num_queues} bins"
                                        ),
                                        "raise num_queues or bound the core's bin ids",
                                    );
                                }
                                if w != elem_bytes {
                                    self.emit(
                                        Code::B006,
                                        op,
                                        format!(
                                            "MemQueue buffers {elem_bytes}-byte payloads but the \
                                             pair stream carries {w}-byte payloads"
                                        ),
                                        "match the MemQueue elem width to the payload",
                                    );
                                }
                            }
                            ShapeDomain::Unknown => {}
                            other => {
                                self.emit(
                                    Code::B005,
                                    op,
                                    format!(
                                        "buffer-mode MemQueue needs a (bin, payload) pair \
                                         stream, got {other}"
                                    ),
                                    "declare the input as bin pairs",
                                );
                            }
                        },
                        MemQueueMode::Append => self.check_write(op, "append MemQueue", &r, d),
                    }
                }
                if let Some(rm) = self.resolve(op, "MemQueue meta", *meta_addr) {
                    let need = (*meta_addr - rm.base) + *num_queues as u64 * 8;
                    if need > rm.bytes {
                        self.emit(
                            Code::B008,
                            op,
                            format!(
                                "MemQueue tail pointers need {need} bytes of region '{}' \
                                 ({} bytes)",
                                rm.name, rm.bytes
                            ),
                            "grow the metadata region or shrink the bin count",
                        );
                    }
                }
                match (mode, self.schema.region_containing(*data_base)) {
                    // Buffer-mode MQUs re-emit the buffered elements.
                    (MemQueueMode::Buffer, Some(r)) => ShapeDomain::Elements {
                        region: Some(r.name.clone()),
                        elem_bytes: *elem_bytes,
                        max: r.max_value,
                    },
                    _ => ShapeDomain::Unknown,
                }
            }
        }
    }

    /// Checks a stream written into region `r` (stream writers and
    /// append-mode MemQueues) against the region's declared framing.
    fn check_write(&mut self, op: usize, what: &str, r: &RegionSchema, d: &ShapeDomain) {
        match (d, &r.framing) {
            (
                ShapeDomain::Bytes {
                    codec,
                    decoded_elem_bytes,
                    ..
                },
                Framing::Frames {
                    codec: declared,
                    decoded_elem_bytes: declared_w,
                    ..
                },
            ) => {
                if codec != declared {
                    self.emit(
                        Code::B004,
                        op,
                        format!(
                            "{what} stores {codec} frames into region '{}' declared to hold \
                             {declared} frames",
                            r.name
                        ),
                        "match the compressor codec to the region's declared codec",
                    );
                }
                if decoded_elem_bytes != declared_w {
                    self.emit(
                        Code::B006,
                        op,
                        format!(
                            "{what} stores frames decoding to {decoded_elem_bytes}-byte \
                             elements into region '{}' declared as {declared_w}-byte",
                            r.name
                        ),
                        "match the compressed element width to the region declaration",
                    );
                }
            }
            (ShapeDomain::Bytes { codec, .. }, Framing::Raw) => {
                self.emit(
                    Code::B005,
                    op,
                    format!("{what} stores {codec} frames into raw region '{}'", r.name),
                    "declare the region framed, or drop the compressor",
                );
            }
            (ShapeDomain::Elements { elem_bytes, .. }, Framing::Frames { codec, .. }) => {
                self.emit(
                    Code::B005,
                    op,
                    format!(
                        "{what} stores raw {elem_bytes}-byte elements into region '{}' \
                         declared to hold {codec} frames",
                        r.name
                    ),
                    "compress the stream before writing, or declare the region raw",
                );
            }
            (ShapeDomain::Elements { elem_bytes, .. }, Framing::Raw) => {
                self.check_width(op, what, r, *elem_bytes);
            }
            (ShapeDomain::BinPairs { .. }, _) => {
                self.emit(
                    Code::B005,
                    op,
                    format!(
                        "{what} stores a (bin, payload) pair stream into '{}'",
                        r.name
                    ),
                    "route pair streams through a buffer-mode MemQueue",
                );
            }
            (ShapeDomain::Unknown, _) => {}
        }
    }
}

/// The domain a declared [`InputDomain`] seeds its queue with.
fn input_domain_value(
    schema: &MemorySchema,
    q: QueueId,
    d: &InputDomain,
    diags: &mut Vec<Diagnostic>,
) -> ShapeDomain {
    match d {
        InputDomain::Ranges { region } => match schema.region_named(region) {
            Some(r) => ShapeDomain::Elements {
                region: Some(r.name.clone()),
                elem_bytes: 8, // the core enqueues endpoints as u64s
                max: Some(r.elems()),
            },
            None => {
                diags.push(
                    Diagnostic::new(
                        Code::B007,
                        Site::Queue(q),
                        None,
                        format!("input declares ranges into unknown region '{region}'"),
                    )
                    .hint("declare the region in the schema"),
                );
                ShapeDomain::Unknown
            }
        },
        InputDomain::Values { elem_bytes, max } => ShapeDomain::Elements {
            region: None,
            elem_bytes: *elem_bytes,
            max: *max,
        },
        InputDomain::BinPairs {
            max_bin,
            elem_bytes,
        } => ShapeDomain::BinPairs {
            max_bin: *max_bin,
            elem_bytes: *elem_bytes,
        },
    }
}

/// Verifies `p` against `schema`, returning `B001`–`B008` diagnostics and
/// the inferred per-queue shape domains.
///
/// # Examples
///
/// ```
/// use spzip_core::dcl::{OperatorKind, PipelineBuilder, RangeInput};
/// use spzip_core::shape::{self, InputDomain, MemorySchema, RegionSchema};
/// use spzip_mem::DataClass;
///
/// // offsets[v], offsets[v+1] for vertex ids v <= 9 needs 11 elements.
/// let mut b = PipelineBuilder::new();
/// let ids = b.queue(8);
/// let offs = b.queue(24);
/// b.operator(
///     OperatorKind::Indirect { base: 0x1000, elem_bytes: 8, pair: true, class: DataClass::AdjacencyMatrix },
///     ids,
///     vec![offs],
/// );
/// let p = b.build().unwrap();
///
/// let mut schema = MemorySchema::new();
/// schema.add_region(RegionSchema::raw_bounded("offsets", 0x1000, 11 * 8, 8, 200));
/// schema.declare_input(ids, InputDomain::Values { elem_bytes: 4, max: Some(9) });
/// assert!(shape::verify(&p, &schema).is_clean());
///
/// // One vertex more and the pair fetch runs off the end: B002.
/// schema.declare_input(ids, InputDomain::Values { elem_bytes: 4, max: Some(10) });
/// let report = shape::verify(&p, &schema);
/// assert_eq!(report.diagnostics[0].code.as_str(), "B002");
/// ```
pub fn verify(p: &Pipeline, schema: &MemorySchema) -> ShapeReport {
    let ops = p.operators();
    let mut diags = Vec::new();
    let mut domains: Vec<Option<ShapeDomain>> = vec![None; p.queues().len()];

    for q in p.core_input_queues() {
        domains[q as usize] = Some(match schema.inputs.get(&q) {
            Some(d) => input_domain_value(schema, q, d, &mut diags),
            None => {
                diags.push(
                    Diagnostic::new(
                        Code::B007,
                        Site::Queue(q),
                        p.queue_lines().get(q as usize).copied().flatten(),
                        format!("core input queue q{q} has no declared shape"),
                    )
                    .hint("declare the input domain in the schema"),
                );
                ShapeDomain::Unknown
            }
        });
    }

    let mut v = Verifier {
        schema,
        lines: p.operator_lines(),
        diags,
    };

    // Topological sweep: an operator fires once its input queue's domain
    // is known. Valid pipelines are acyclic with a single producer per
    // queue, so this converges in <= |ops| passes; queues nothing feeds
    // (already a lint warning) simply stay unknown.
    let mut done = vec![false; ops.len()];
    loop {
        let mut progressed = false;
        for (i, op) in ops.iter().enumerate() {
            if done[i] {
                continue;
            }
            let Some(d) = domains[op.input as usize].clone() else {
                continue;
            };
            done[i] = true;
            progressed = true;
            let out = v.transfer(i, &op.kind, &d);
            for &oq in &op.outputs {
                domains[oq as usize] = Some(out.clone());
            }
        }
        if !progressed {
            break;
        }
    }

    ShapeReport {
        diagnostics: v.diags,
        queue_domains: domains,
    }
}

/// Renders `p` as Graphviz dot with every queue edge annotated by its
/// inferred shape domain — region, width, framing — so a miswiring is
/// visible in the rendered graph (`dcl-lint --dot`).
pub fn annotated_dot(p: &Pipeline, report: &ShapeReport) -> String {
    crate::parser::to_dot_with(p, &|q| format!("q{q}: {}", report.domain_label(q)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::{PipelineBuilder, RangeInput};
    use spzip_mem::DataClass;

    fn codes(r: &ShapeReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// A two-region schema: a bounded index array feeding a data array.
    fn schema() -> MemorySchema {
        let mut s = MemorySchema::new();
        // 17 offsets (16 rows + sentinel), values bounded by 100 edges.
        s.add_region(RegionSchema::raw_bounded("offsets", 0x1000, 17 * 8, 8, 100));
        s.add_region(RegionSchema::raw_bounded(
            "neighbors",
            0x4000,
            100 * 4,
            4,
            15,
        ));
        s.add_region(RegionSchema::raw("dst", 0x8000, 16 * 4, 4));
        s.add_region(RegionSchema::framed(
            "cbytes",
            0xc000,
            256,
            CodecKind::Delta,
            4,
            Some(15),
        ));
        s
    }

    fn fig2(offs_base: u64, neigh_base: u64, neigh_elem: u8) -> (Pipeline, QueueId) {
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(8);
        let offs_q = b.queue(24);
        let rows_q = b.queue(48);
        b.operator(
            OperatorKind::RangeFetch {
                base: offs_base,
                idx_bytes: 8,
                elem_bytes: 8,
                input: RangeInput::Pairs,
                marker: None,
                class: DataClass::AdjacencyMatrix,
            },
            in_q,
            vec![offs_q],
        );
        b.operator(
            OperatorKind::RangeFetch {
                base: neigh_base,
                idx_bytes: 8,
                elem_bytes: neigh_elem,
                input: RangeInput::Consecutive,
                marker: Some(0),
                class: DataClass::AdjacencyMatrix,
            },
            offs_q,
            vec![rows_q],
        );
        (b.build().unwrap(), in_q)
    }

    #[test]
    fn clean_traversal_verifies() {
        let (p, in_q) = fig2(0x1000, 0x4000, 4);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "offsets".into(),
            },
        );
        let r = verify(&p, &s);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        // The inferred domains trace the chain: endpoints -> offsets
        // elements -> neighbor elements.
        assert_eq!(
            r.queue_domains[1],
            Some(ShapeDomain::Elements {
                region: Some("offsets".into()),
                elem_bytes: 8,
                max: Some(100),
            })
        );
        assert_eq!(
            r.queue_domains[2],
            Some(ShapeDomain::Elements {
                region: Some("neighbors".into()),
                elem_bytes: 4,
                max: Some(15),
            })
        );
    }

    #[test]
    fn b001_unmapped_base() {
        let (p, in_q) = fig2(0x1000, 0x999000, 4);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "offsets".into(),
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B001"]);
    }

    #[test]
    fn b002_index_stream_exceeds_extent() {
        // Neighbors region shrunk below the offsets bound: 100 * 4 > 80.
        let (p, in_q) = fig2(0x1000, 0x4000, 4);
        let mut s = schema();
        s.regions[1].bytes = 80;
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "offsets".into(),
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B002"]);
    }

    #[test]
    fn b003_wrong_element_width() {
        let (p, in_q) = fig2(0x1000, 0x4000, 8);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "offsets".into(),
            },
        );
        let r = verify(&p, &s);
        // The doubled width also doubles the reach: B002 rides along.
        assert!(codes(&r).contains(&"B003"), "{:?}", r.diagnostics);
    }

    fn byte_fetch_decompress(codec: CodecKind, elem: u8) -> (Pipeline, QueueId) {
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(8);
        let bytes_q = b.queue(32);
        let out_q = b.queue(48);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0xc000,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(0),
                class: DataClass::AdjacencyMatrix,
            },
            in_q,
            vec![bytes_q],
        );
        b.operator(
            OperatorKind::Decompress {
                codec,
                elem_bytes: elem,
            },
            bytes_q,
            vec![out_q],
        );
        (b.build().unwrap(), in_q)
    }

    #[test]
    fn b004_wrong_codec() {
        let (p, in_q) = byte_fetch_decompress(CodecKind::Rle, 4);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "cbytes".into(),
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B004"]);
    }

    #[test]
    fn b005_decompress_raw_stream() {
        // A byte fetch from a *raw* region (not framed) feeding a
        // decompressor: structurally legal (widths agree), but the bytes
        // were never codec frames.
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(8);
        let bytes_q = b.queue(32);
        let out_q = b.queue(48);
        b.operator(
            OperatorKind::RangeFetch {
                base: 0x10000,
                idx_bytes: 8,
                elem_bytes: 1,
                input: RangeInput::Pairs,
                marker: Some(0),
                class: DataClass::DestinationVertex,
            },
            in_q,
            vec![bytes_q],
        );
        b.operator(
            OperatorKind::Decompress {
                codec: CodecKind::Delta,
                elem_bytes: 4,
            },
            bytes_q,
            vec![out_q],
        );
        let p = b.build().unwrap();
        let mut s = schema();
        s.add_region(RegionSchema::raw("blob", 0x10000, 64, 1));
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "blob".into(),
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B005"]);
    }

    #[test]
    fn b006_decoded_width_mismatch() {
        let (p, in_q) = byte_fetch_decompress(CodecKind::Delta, 8);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "cbytes".into(),
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B006"]);
    }

    #[test]
    fn b006_codec_natural_width() {
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(64);
        let bytes_q = b.queue(48);
        b.operator(
            OperatorKind::Compress {
                codec: CodecKind::Bpc32,
                elem_bytes: 8,
                sort_chunks: false,
            },
            in_q,
            vec![bytes_q],
        );
        let p = b.build().unwrap();
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Values {
                elem_bytes: 8,
                max: None,
            },
        );
        assert_eq!(codes(&verify(&p, &s)), vec!["B006"]);
    }

    #[test]
    fn b007_undeclared_core_input() {
        let (p, _) = fig2(0x1000, 0x4000, 4);
        let r = verify(&p, &schema());
        assert_eq!(codes(&r), vec!["B007"]);
        assert_eq!(r.queue_domains[0], Some(ShapeDomain::Unknown));
        // Nothing downstream is double-reported.
        assert_eq!(r.diagnostics.len(), 1);
    }

    #[test]
    fn b008_memqueue_overflows_region() {
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(64);
        let out_q = b.queue(48);
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 4,
                data_base: 0x8000,
                stride: 4096,
                meta_addr: 0x1000,
                chunk_elems: 32,
                elem_bytes: 8,
                mode: MemQueueMode::Buffer,
                class: DataClass::Updates,
            },
            in_q,
            vec![out_q],
        );
        let p = b.build().unwrap();
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::BinPairs {
                max_bin: 3,
                elem_bytes: 8,
            },
        );
        // 4 bins x 4096 B into dst's 64 bytes.
        assert!(codes(&verify(&p, &s)).contains(&"B008"));
    }

    #[test]
    fn bin_id_overflow_is_b002() {
        let mut b = PipelineBuilder::new();
        let in_q = b.queue(64);
        let out_q = b.queue(48);
        b.operator(
            OperatorKind::MemQueue {
                num_queues: 2,
                data_base: 0x4000,
                stride: 128,
                meta_addr: 0x1000,
                chunk_elems: 8,
                elem_bytes: 8,
                mode: MemQueueMode::Buffer,
                class: DataClass::Updates,
            },
            in_q,
            vec![out_q],
        );
        let p = b.build().unwrap();
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::BinPairs {
                max_bin: 2,
                elem_bytes: 8,
            },
        );
        let r = verify(&p, &s);
        assert!(codes(&r).contains(&"B002"), "{:?}", r.diagnostics);
    }

    #[test]
    fn b_codes_are_errors_and_registered() {
        use crate::lint::Severity;
        for c in [
            Code::B001,
            Code::B002,
            Code::B003,
            Code::B004,
            Code::B005,
            Code::B006,
            Code::B007,
            Code::B008,
        ] {
            assert_eq!(c.severity(), Severity::Error);
            assert!(Code::all().contains(&c));
        }
    }

    #[test]
    fn annotated_dot_labels_edges_with_domains() {
        let (p, in_q) = fig2(0x1000, 0x4000, 4);
        let mut s = schema();
        s.declare_input(
            in_q,
            InputDomain::Ranges {
                region: "offsets".into(),
            },
        );
        let r = verify(&p, &s);
        let dot = annotated_dot(&p, &r);
        assert!(dot.contains("raw w8 max=100 @offsets"), "{dot}");
        assert!(dot.contains("raw w4 max=15 @neighbors"), "{dot}");
    }

    #[test]
    fn domain_display_is_compact() {
        let d = ShapeDomain::Bytes {
            codec: CodecKind::Delta,
            decoded_elem_bytes: 4,
            decoded_max: Some(9),
        };
        assert_eq!(d.to_string(), "frames(delta)->w4 max=9");
        assert_eq!(ShapeDomain::Unknown.to_string(), "?");
    }
}
