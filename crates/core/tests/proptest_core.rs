//! Property-based tests on the DCL: textual round-trips for arbitrary
//! pipelines, and flow conservation + timing drain for random traversal
//! programs over random data.

use proptest::prelude::*;
use spzip_compress::CodecKind;
use spzip_core::dcl::{OperatorKind, Pipeline, PipelineBuilder, RangeInput};
use spzip_core::engine::{EngineConfig, EngineModel};
use spzip_core::func::FuncEngine;
use spzip_core::memory::MemoryImage;
use spzip_core::parser;
use spzip_mem::hierarchy::{MemConfig, MemorySystem};
use spzip_mem::DataClass;
use std::collections::HashMap;

fn arb_class() -> impl Strategy<Value = DataClass> {
    prop_oneof![
        Just(DataClass::AdjacencyMatrix),
        Just(DataClass::SourceVertex),
        Just(DataClass::DestinationVertex),
        Just(DataClass::Updates),
        Just(DataClass::Frontier),
        Just(DataClass::Other),
    ]
}

fn arb_codec() -> impl Strategy<Value = CodecKind> {
    prop_oneof![
        Just(CodecKind::None),
        Just(CodecKind::Delta),
        Just(CodecKind::Bpc32),
        Just(CodecKind::Rle),
    ]
}

/// A random chain pipeline: range fetch, optionally through a compressor/
/// decompressor pair, optionally ending in an indirection.
fn arb_chain() -> impl Strategy<Value = (Pipeline, bool)> {
    (
        arb_class(),
        arb_codec(),
        any::<bool>(),
        any::<bool>(),
        1u16..64,
    )
        .prop_map(|(class, codec, transform, indirect, cap)| {
            let mut b = PipelineBuilder::new();
            let q0 = b.queue(8);
            let q1 = b.queue(cap.max(8));
            b.operator(
                OperatorKind::RangeFetch {
                    base: 0x1000,
                    idx_bytes: 8,
                    elem_bytes: 4,
                    input: RangeInput::Pairs,
                    marker: Some(0),
                    class,
                },
                q0,
                vec![q1],
            );
            let mut last = q1;
            if transform {
                let q2 = b.queue(cap.max(8));
                let q3 = b.queue(cap.max(8));
                b.operator(
                    OperatorKind::Compress {
                        codec,
                        elem_bytes: 4,
                        sort_chunks: false,
                    },
                    last,
                    vec![q2],
                );
                b.operator(
                    OperatorKind::Decompress {
                        codec,
                        elem_bytes: 4,
                    },
                    q2,
                    vec![q3],
                );
                last = q3;
            }
            if indirect {
                let q4 = b.queue(cap.max(8));
                b.operator(
                    OperatorKind::Indirect {
                        base: 0x8000,
                        elem_bytes: 4,
                        pair: false,
                        class: DataClass::DestinationVertex,
                    },
                    last,
                    vec![q4],
                );
            }
            (b.build().expect("chain validates"), transform)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn textual_roundtrip((p, _) in arb_chain()) {
        let text = parser::to_text(&p);
        let reparsed = parser::parse(&text, &HashMap::new()).unwrap();
        prop_assert_eq!(p, reparsed);
    }

    #[test]
    fn random_chain_conserves_flow_and_drains(
        (p, _) in arb_chain(),
        data in proptest::collection::vec(0u32..400_000, 1..200),
        scratch in prop_oneof![Just(256u32), Just(512), Just(2048)],
    ) {
        // Functional run over real data.
        let mut img = MemoryImage::new();
        let arr = img.alloc_u32s("arr", &data, DataClass::Other);
        let ind = img.alloc_u32s("ind", &vec![7u32; 2_000_000 / 4], DataClass::Other);
        // Rebuild with real base addresses (the strategy used dummies).
        let mut b = PipelineBuilder::new();
        for q in p.queues() {
            b.queue(q.capacity_words);
        }
        for op in p.operators() {
            let kind = match op.kind.clone() {
                OperatorKind::RangeFetch { idx_bytes, elem_bytes, input, marker, class, .. } => {
                    OperatorKind::RangeFetch { base: arr, idx_bytes, elem_bytes, input, marker, class }
                }
                OperatorKind::Indirect { elem_bytes, pair, class, .. } => {
                    OperatorKind::Indirect { base: ind, elem_bytes, pair, class }
                }
                other => other,
            };
            b.operator(kind, op.input, op.outputs.clone());
        }
        let p = b.build().unwrap();
        let mut eng = FuncEngine::new(p.clone());
        let mut enq: Vec<(u8, u16)> = Vec::new();
        let c1 = eng.enqueue_value(0, 0, 8);
        let c2 = eng.enqueue_value(0, data.len() as u64, 8);
        enq.push((0, c1));
        enq.push((0, c2));
        eng.run(&mut img);

        // Flow conservation per queue.
        let firings = eng.take_firings();
        let nq = p.queues().len();
        let mut produced = vec![0u64; nq];
        let mut consumed = vec![0u64; nq];
        for &(q, c) in &enq {
            produced[q as usize] += c as u64;
        }
        for (i, op) in p.operators().iter().enumerate() {
            for f in &firings[i] {
                consumed[op.input as usize] += f.consumed_q as u64;
                for &o in &op.outputs {
                    produced[o as usize] += f.produced_q as u64;
                }
            }
        }
        let mut residual = vec![0u64; nq];
        for q in 0..nq as u8 {
            residual[q as usize] =
                eng.drain_output_costed(q).iter().map(|&(_, c)| c as u64).sum();
        }
        for q in 0..nq {
            prop_assert_eq!(produced[q], consumed[q] + residual[q], "queue {} unbalanced", q);
        }

        // Timing drain at the given scratchpad size.
        let mut cfg = EngineConfig::fetcher();
        cfg.scratchpad_bytes = scratch;
        let mut model = EngineModel::new(cfg, 0);
        model.load_program(&p, 0);
        model.append_trace(firings);
        for &(q, c) in &enq {
            prop_assert!(model.can_enqueue(q, c));
            model.enqueue(q, c);
        }
        let outs = p.core_output_queues();
        let mut mem = MemorySystem::new(MemConfig::paper_scaled());
        let mut now = 0u64;
        while !model.idle() && now < 20_000_000 {
            model.tick(now, 64, &mut mem);
            for &q in &outs {
                while model.can_dequeue(q, 1) {
                    model.dequeue(q, 1);
                }
            }
            now += 64;
        }
        prop_assert!(model.idle(), "wedged: {:?}", model.stall_reason(now));
    }
}
