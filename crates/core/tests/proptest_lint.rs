//! Property-based tests for the DCL static analyzer: textual round-trips
//! over a wider operator mix than `proptest_core`, and determinism of the
//! linter (same pipeline, same diagnostics, same order — every time).

use proptest::prelude::*;
use spzip_compress::CodecKind;
use spzip_core::dcl::{OperatorKind, Pipeline, PipelineBuilder, RangeInput};
use spzip_core::lint;
use spzip_core::parser;
use spzip_mem::DataClass;
use std::collections::HashMap;

fn arb_class() -> impl Strategy<Value = DataClass> {
    prop_oneof![
        Just(DataClass::AdjacencyMatrix),
        Just(DataClass::SourceVertex),
        Just(DataClass::DestinationVertex),
        Just(DataClass::Updates),
        Just(DataClass::Frontier),
        Just(DataClass::Other),
    ]
}

fn arb_codec() -> impl Strategy<Value = CodecKind> {
    prop_oneof![
        Just(CodecKind::None),
        Just(CodecKind::Delta),
        Just(CodecKind::Bpc32),
        Just(CodecKind::Bpc64),
        Just(CodecKind::Rle),
    ]
}

fn arb_elem() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

/// A random valid chain: fetch, optional compress/decompress stage,
/// optional indirection, optional StreamWrite sink, with a possibly
/// dangling extra queue (a W001 warning, still buildable).
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    (
        (arb_class(), arb_codec(), arb_elem(), arb_elem()),
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        8u16..64,
    )
        .prop_map(
            |((class, codec, e1, e2), (transform, indirect, sink, dangling), cap)| {
                let mut b = PipelineBuilder::new();
                let q0 = b.queue(8);
                let q1 = b.queue(cap);
                b.operator(
                    OperatorKind::RangeFetch {
                        base: 0x1000,
                        idx_bytes: 8,
                        elem_bytes: e1,
                        input: RangeInput::Pairs,
                        marker: Some(0),
                        class,
                    },
                    q0,
                    vec![q1],
                );
                let mut last = q1;
                if transform {
                    let q2 = b.queue(cap);
                    let q3 = b.queue(cap);
                    // Compress consumes e1-wide elements (matching the fetch
                    // output) and emits bytes; Decompress re-widens to e2.
                    b.operator(
                        OperatorKind::Compress {
                            codec,
                            elem_bytes: e1,
                            sort_chunks: false,
                        },
                        last,
                        vec![q2],
                    );
                    b.operator(
                        OperatorKind::Decompress {
                            codec,
                            elem_bytes: e2,
                        },
                        q2,
                        vec![q3],
                    );
                    last = q3;
                }
                if indirect {
                    let q4 = b.queue(cap);
                    b.operator(
                        OperatorKind::Indirect {
                            base: 0x8000,
                            elem_bytes: e2,
                            pair: false,
                            class: DataClass::DestinationVertex,
                        },
                        last,
                        vec![q4],
                    );
                    last = q4;
                }
                if sink {
                    b.operator(
                        OperatorKind::StreamWrite {
                            base: 0x9000,
                            class: DataClass::Updates,
                        },
                        last,
                        Vec::new(),
                    );
                }
                if dangling {
                    b.queue(cap);
                }
                b.build().expect("chain validates")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(to_text(p))` is the identity for arbitrary valid pipelines.
    #[test]
    fn textual_roundtrip(p in arb_pipeline()) {
        let text = parser::to_text(&p);
        let reparsed = parser::parse(&text, &HashMap::new()).unwrap();
        prop_assert_eq!(p, reparsed);
    }

    /// The linter is deterministic: repeated runs over the same pipeline
    /// (and over its textual round-trip) produce identical diagnostics in
    /// identical order.
    #[test]
    fn lint_is_deterministic(p in arb_pipeline()) {
        let first = lint::lint(&p);
        for _ in 0..3 {
            prop_assert_eq!(&first, &lint::lint(&p));
        }
        let reparsed = parser::parse(&parser::to_text(&p), &HashMap::new()).unwrap();
        // Codes and sites survive the round-trip; spans may differ because
        // the printed text has its own line numbering.
        let keys = |d: &[lint::Diagnostic]| {
            d.iter().map(|x| (x.code, x.site)).collect::<Vec<_>>()
        };
        prop_assert_eq!(keys(&first), keys(&lint::lint(&reparsed)));
    }

    /// Anything `build()` accepts is free of error-severity diagnostics.
    #[test]
    fn built_pipelines_have_no_lint_errors(p in arb_pipeline()) {
        let diags = lint::lint(&p);
        prop_assert!(!lint::has_errors(&diags), "{}", lint::render(&diags));
    }
}
