use spzip_core::dcl::{OperatorKind, PipelineBuilder, RangeInput};
use spzip_mem::DataClass;

fn range8(base: u64) -> OperatorKind {
    OperatorKind::RangeFetch {
        base,
        idx_bytes: 8,
        elem_bytes: 8,
        input: RangeInput::Pairs,
        marker: None,
        class: DataClass::AdjacencyMatrix,
    }
}

#[test]
fn multi_producer_with_consumer_does_not_panic() {
    let mut b = PipelineBuilder::new();
    let q0 = b.queue(8);
    let q1 = b.queue(8);
    let q2 = b.queue(32);
    let q3 = b.queue(32);
    b.operator(range8(0), q0, vec![q2]);
    b.operator(range8(64), q1, vec![q2]);
    b.operator(range8(128), q2, vec![q3]);
    let diags = b.lint();
    assert!(diags.iter().any(|d| d.code.as_str() == "E007"));
}
