//! Robustness corpus: truncated and corrupted inputs must come back as
//! [`DecodeError`] — never a panic, never an out-of-bounds read.
//!
//! The corpus is table-driven: every stream codec is run over every
//! prefix-truncation of a valid encoding and over single-byte corruptions
//! at every position. Decoding is allowed to *succeed* on a corrupted
//! stream (flipping a payload byte yields different, but valid, data);
//! what it may never do is panic or read outside the input slice. BDI
//! lines get the same treatment through `try_decompress_line`.

use spzip_compress::bdi;
use spzip_compress::bpc::BpcCodec;
use spzip_compress::delta::DeltaCodec;
use spzip_compress::rle::RleCodec;
use spzip_compress::sorted::SortedChunks;
use spzip_compress::{Codec, CodecKind, ElemWidth};

/// All six stream codecs, by trajectory name.
fn all_codecs() -> Vec<(&'static str, Box<dyn Codec>)> {
    vec![
        ("delta", Box::new(DeltaCodec::new()) as Box<dyn Codec>),
        ("bpc32", Box::new(BpcCodec::new(ElemWidth::W32))),
        ("bpc64", Box::new(BpcCodec::new(ElemWidth::W64))),
        ("rle", Box::new(RleCodec::new())),
        (
            "delta_sorted",
            Box::new(SortedChunks::new(DeltaCodec::new())),
        ),
        ("identity", CodecKind::None.build() as Box<dyn Codec>),
    ]
}

/// Streams chosen so encodings exercise every frame shape: empty, single
/// element, one exact batch, ragged tails, mixed magnitudes, long runs.
fn corpus_streams() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("empty", vec![]),
        ("single", vec![0xDEAD_BEEF]),
        ("one_batch", (0..32u64).map(|i| i * 3).collect()),
        ("ragged", (0..45u64).map(|i| i << (i % 23)).collect()),
        (
            "mixed_magnitude",
            (0..100u64)
                .map(|i| match i % 4 {
                    0 => i,
                    1 => i << 13,
                    2 => i << 29,
                    _ => i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 8,
                })
                .collect(),
        ),
        (
            "runs",
            std::iter::repeat_n(7u64, 70)
                .chain(std::iter::repeat_n(0, 30))
                .collect(),
        ),
    ]
}

/// Encodes `data`, masked to the codec's width (BPC-32 streams must fit).
fn encode_masked(codec: &dyn Codec, data: &[u64]) -> Vec<u8> {
    let masked: Vec<u64> = data
        .iter()
        .map(|&v| {
            if codec.name().contains("32") {
                v & u32::MAX as u64
            } else {
                v
            }
        })
        .collect();
    let mut out = Vec::new();
    codec.compress(&masked, &mut out);
    out
}

#[test]
fn every_truncation_errors_or_decodes_cleanly() {
    for (codec_name, codec) in all_codecs() {
        for (stream_name, data) in corpus_streams() {
            let valid = encode_masked(codec.as_ref(), &data);
            // The full encoding must decode.
            let mut out = Vec::new();
            codec
                .decompress(&valid, &mut out)
                .unwrap_or_else(|e| panic!("{codec_name}/{stream_name}: valid stream failed: {e}"));
            // Every proper prefix must either error or decode without
            // panicking (a prefix can end exactly on a frame boundary, in
            // which case it is itself a valid, shorter stream).
            for cut in 0..valid.len() {
                let mut out = Vec::new();
                let _ = codec.decompress(&valid[..cut], &mut out);
            }
        }
    }
}

#[test]
fn truncating_mid_frame_is_a_decode_error() {
    // Cutting the last byte off a non-empty encoding always leaves a
    // partial frame: the decoder must report it, not return short data.
    for (codec_name, codec) in all_codecs() {
        for (stream_name, data) in corpus_streams() {
            if data.is_empty() {
                continue;
            }
            let valid = encode_masked(codec.as_ref(), &data);
            let mut out = Vec::new();
            let res = codec.decompress(&valid[..valid.len() - 1], &mut out);
            assert!(
                res.is_err(),
                "{codec_name}/{stream_name}: decoded a stream missing its last byte"
            );
        }
    }
}

#[test]
fn every_single_byte_corruption_is_handled() {
    for (codec_name, codec) in all_codecs() {
        for (stream_name, data) in corpus_streams() {
            let valid = encode_masked(codec.as_ref(), &data);
            for pos in 0..valid.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut bad = valid.clone();
                    bad[pos] ^= flip;
                    let mut out = Vec::new();
                    // Success is fine (payload corruption decodes to other
                    // data); panics and over-reads are what this guards.
                    let _ = codec.decompress(&bad, &mut out);
                    let _ = (codec_name, stream_name);
                }
            }
        }
    }
}

#[test]
fn header_lies_about_length_are_errors() {
    // Frames start with a varint element count; inflating it must produce
    // an error, not a huge allocation or an over-read.
    for (codec_name, codec) in all_codecs() {
        let valid = encode_masked(codec.as_ref(), &[1, 2, 3]);
        // A 5-byte varint claiming ~2^34 elements, then nothing.
        let bloated: Vec<u8> = vec![0xFF, 0xFF, 0xFF, 0xFF, 0x3F];
        let mut out = Vec::new();
        assert!(
            codec.decompress(&bloated, &mut out).is_err(),
            "{codec_name}: accepted a length header with no payload"
        );
        // Splicing the bloated header onto real payload bytes must fail too.
        let mut spliced = bloated;
        spliced.extend_from_slice(&valid);
        let mut out = Vec::new();
        assert!(
            codec.decompress(&spliced, &mut out).is_err(),
            "{codec_name}: accepted an inflated length header"
        );
    }
}

#[test]
fn bdi_rejects_truncated_and_malformed_lines() {
    let mut line = [0u8; bdi::LINE_BYTES];
    for (i, b) in line.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(7).wrapping_add(3);
    }
    for enc in [
        bdi::compress_line(&line),
        bdi::compress_line(&[0u8; bdi::LINE_BYTES]),
        bdi::compress_line(&[0xAA; bdi::LINE_BYTES]),
    ] {
        assert_eq!(
            bdi::try_decompress_line(&enc).unwrap().len(),
            bdi::LINE_BYTES
        );
        // Every truncation must be rejected (BDI encodings are exact-length).
        for cut in 0..enc.len() {
            assert!(
                bdi::try_decompress_line(&enc[..cut]).is_err(),
                "BDI accepted a {cut}-byte truncation of a {}-byte line",
                enc.len()
            );
        }
        // Extending is also a length mismatch.
        let mut long = enc.clone();
        long.push(0);
        assert!(bdi::try_decompress_line(&long).is_err());
    }
    // Unknown tags.
    for tag in [0x02u8, 0x0F, 0x20, 0x40, 0x80, 0xFE] {
        assert!(
            bdi::try_decompress_line(&[tag]).is_err(),
            "BDI accepted unknown tag {tag:#x}"
        );
    }
    // Base-delta tags with nonsense geometry (delta width >= base width).
    for (base_log2, delta_log2) in [(0u8, 0u8), (1, 1), (2, 3), (3, 3)] {
        let tag = 0x10 | (base_log2 << 2) | delta_log2;
        if delta_log2 < base_log2 && base_log2 > 0 {
            continue; // geometrically valid; skip
        }
        assert!(
            bdi::try_decompress_line(&[tag]).is_err(),
            "BDI accepted malformed base-delta tag {tag:#x}"
        );
    }
}

#[test]
fn decode_error_messages_name_the_problem() {
    // The error type should render something a human can act on.
    let codec = DeltaCodec::new();
    let mut valid = Vec::new();
    codec.compress(&[1, 2, 3, 4, 5], &mut valid);
    let mut out = Vec::new();
    let err = codec
        .decompress(&valid[..valid.len() - 1], &mut out)
        .unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
}
