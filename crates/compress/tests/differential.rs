//! Differential tests: the batch `kernel` implementations must be
//! bit-identical to the retained scalar `reference` oracle.
//!
//! Every codec is checked in both directions on the same stream:
//!
//! * encode: kernel bytes == reference bytes (the wire format is shared),
//! * decode: kernel decode of the reference's bytes == the input, and
//!   vice versa (cross-decoding, so neither side can drift in private),
//! * determinism: two kernel encodes of the same stream agree.
//!
//! Lengths deliberately straddle the 32-element batch boundary so the
//! unconditional fast path, the scalar tail path, and the empty stream
//! are all exercised.

use proptest::prelude::*;
use spzip_compress::bpc::BpcCodec;
use spzip_compress::delta::DeltaCodec;
use spzip_compress::reference::ReferenceCodec;
use spzip_compress::rle::RleCodec;
use spzip_compress::sorted::SortedChunks;
use spzip_compress::{Codec, CodecKind, ElemWidth, IdentityCodec, CHUNK_ELEMS};

/// A codec under differential test: (kernel, reference oracle, width mask).
type CodecPair = (Box<dyn Codec>, Box<dyn Codec>, u64);

/// The codec pairs under differential test: (kernel, reference oracle).
fn pairs() -> Vec<CodecPair> {
    vec![
        (
            Box::new(DeltaCodec::new()) as Box<dyn Codec>,
            Box::new(ReferenceCodec::new(CodecKind::Delta)) as Box<dyn Codec>,
            u64::MAX,
        ),
        (
            Box::new(BpcCodec::new(ElemWidth::W32)),
            Box::new(ReferenceCodec::new(CodecKind::Bpc32)),
            u32::MAX as u64,
        ),
        (
            Box::new(BpcCodec::new(ElemWidth::W64)),
            Box::new(ReferenceCodec::new(CodecKind::Bpc64)),
            u64::MAX,
        ),
        (
            Box::new(RleCodec::new()),
            Box::new(ReferenceCodec::new(CodecKind::Rle)),
            u64::MAX,
        ),
        (
            Box::new(SortedChunks::new(DeltaCodec::new())),
            Box::new(SortedChunks::new(ReferenceCodec::new(CodecKind::Delta))),
            u64::MAX,
        ),
        (
            Box::new(IdentityCodec::new(ElemWidth::W64)),
            Box::new(ReferenceCodec::new(CodecKind::None)),
            u64::MAX,
        ),
    ]
}

fn encode(codec: &dyn Codec, data: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    codec.compress(data, &mut out);
    out
}

fn decode(codec: &dyn Codec, bytes: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    codec
        .decompress(bytes, &mut out)
        .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
    out
}

/// Asserts all three differential properties for one codec pair.
fn assert_equivalent(kernel: &dyn Codec, reference: &dyn Codec, data: &[u64]) {
    let kbytes = encode(kernel, data);
    let rbytes = encode(reference, data);
    assert_eq!(
        kbytes,
        rbytes,
        "{}: kernel and reference encodings diverge on {} elems",
        kernel.name(),
        data.len()
    );
    assert_eq!(
        kbytes,
        encode(kernel, data),
        "{}: nondeterministic",
        kernel.name()
    );
    let kdec = decode(kernel, &rbytes);
    let rdec = decode(reference, &kbytes);
    assert_eq!(kdec, rdec, "{}: cross-decodes disagree", kernel.name());
    // For order-preserving codecs the decode is the input; SortedChunks
    // sorts within chunks, so compare against the reference decode (already
    // checked equal) rather than the raw input.
    if !kernel.name().contains("sorted") {
        assert_eq!(kdec, data, "{}: decode is not the input", kernel.name());
    }
}

/// Streams whose lengths straddle the batch boundary: empty, sub-batch,
/// exactly one batch, batch + ragged tail (including tails that are not a
/// multiple of the 4-element delta group), and multiple batches.
fn tail_lengths() -> Vec<usize> {
    vec![
        0,
        1,
        3,
        4,
        5,
        CHUNK_ELEMS - 1,
        CHUNK_ELEMS,
        CHUNK_ELEMS + 1,
        CHUNK_ELEMS + 3,
        2 * CHUNK_ELEMS,
        2 * CHUNK_ELEMS + 7,
        5 * CHUNK_ELEMS + 31,
    ]
}

#[test]
fn kernel_matches_reference_on_batch_boundary_lengths() {
    for len in tail_lengths() {
        // A mildly adversarial fixed stream: mixed magnitudes so delta
        // control bytes hit every size class and BPC hits several widths.
        let data: Vec<u64> = (0..len as u64)
            .map(|i| match i % 4 {
                0 => i,
                1 => i << 13,
                2 => i << 29,
                _ => i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 8,
            })
            .collect();
        for (kernel, reference, mask) in pairs() {
            let masked: Vec<u64> = data.iter().map(|v| v & mask).collect();
            assert_equivalent(kernel.as_ref(), reference.as_ref(), &masked);
        }
    }
}

/// Data shapes codecs see in practice, masked to the codec's width.
fn data_strategy(mask: u64) -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>().prop_map(move |v| v & mask), 0..260),
        // Sorted neighbor-set-like streams.
        proptest::collection::vec(any::<u64>().prop_map(move |v| v & mask), 0..260).prop_map(
            |mut v| {
                v.sort_unstable();
                v
            }
        ),
        // Clustered around a center (small deltas).
        (any::<u64>(), proptest::collection::vec(0u64..64, 0..260)).prop_map(
            move |(center, offs)| offs
                .iter()
                .map(|o| (center & mask).wrapping_add(*o) & mask)
                .collect()
        ),
        // Runs (RLE-friendly).
        proptest::collection::vec((any::<u64>(), 1usize..20), 0..24).prop_map(move |runs| {
            runs.iter()
                .flat_map(|(v, n)| std::iter::repeat_n(*v & mask, *n))
                .collect()
        }),
    ]
}

proptest! {
    #[test]
    fn delta_kernel_equals_reference(data in data_strategy(u64::MAX)) {
        assert_equivalent(&DeltaCodec::new(), &ReferenceCodec::new(CodecKind::Delta), &data);
    }

    #[test]
    fn bpc32_kernel_equals_reference(data in data_strategy(u32::MAX as u64)) {
        assert_equivalent(
            &BpcCodec::new(ElemWidth::W32),
            &ReferenceCodec::new(CodecKind::Bpc32),
            &data,
        );
    }

    #[test]
    fn bpc64_kernel_equals_reference(data in data_strategy(u64::MAX)) {
        assert_equivalent(
            &BpcCodec::new(ElemWidth::W64),
            &ReferenceCodec::new(CodecKind::Bpc64),
            &data,
        );
    }

    #[test]
    fn rle_kernel_equals_reference(data in data_strategy(u64::MAX)) {
        assert_equivalent(&RleCodec::new(), &ReferenceCodec::new(CodecKind::Rle), &data);
    }

    #[test]
    fn sorted_kernel_equals_reference(data in data_strategy(u64::MAX)) {
        assert_equivalent(
            &SortedChunks::new(DeltaCodec::new()),
            &SortedChunks::new(ReferenceCodec::new(CodecKind::Delta)),
            &data,
        );
    }

    #[test]
    fn identity_kernel_equals_reference(data in data_strategy(u64::MAX)) {
        assert_equivalent(
            &IdentityCodec::new(ElemWidth::W64),
            &ReferenceCodec::new(CodecKind::None),
            &data,
        );
    }

    /// Garbage decode: kernel and reference must agree on *whether* a
    /// stream is decodable; when both succeed they must agree on the value.
    #[test]
    fn garbage_verdicts_agree(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for (kernel, reference, _) in pairs() {
            let mut kout = Vec::new();
            let mut rout = Vec::new();
            let kres = kernel.decompress(&bytes, &mut kout);
            let rres = reference.decompress(&bytes, &mut rout);
            prop_assert_eq!(
                kres.is_ok(),
                rres.is_ok(),
                "{}: verdicts differ on garbage", kernel.name()
            );
            if kres.is_ok() {
                prop_assert_eq!(&kout, &rout, "{}: decodes differ", kernel.name());
            }
        }
    }
}
