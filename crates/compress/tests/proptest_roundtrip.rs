//! Property-based round-trip tests for every stream codec.

use proptest::prelude::*;
use spzip_compress::bdi::{self, LINE_BYTES};
use spzip_compress::bpc::BpcCodec;
use spzip_compress::delta::DeltaCodec;
use spzip_compress::rle::RleCodec;
use spzip_compress::sorted::SortedChunks;
use spzip_compress::{Codec, ElemWidth, IdentityCodec, CHUNK_ELEMS};

fn roundtrip_exact(codec: &dyn Codec, data: &[u64]) {
    let mut buf = Vec::new();
    codec.compress(data, &mut buf);
    let mut out = Vec::new();
    codec
        .decompress(&buf, &mut out)
        .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
    assert_eq!(out, data, "codec {}", codec.name());
}

/// Data shapes codecs see in practice: ascending ids, clustered ids, runs,
/// and uniform noise.
fn data_strategy(mask: u64) -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Uniform random.
        proptest::collection::vec(any::<u64>().prop_map(move |v| v & mask), 0..200),
        // Sorted (neighbor-set-like).
        proptest::collection::vec(any::<u64>().prop_map(move |v| v & mask), 0..200).prop_map(
            |mut v| {
                v.sort_unstable();
                v
            }
        ),
        // Clustered around a center.
        (any::<u64>(), proptest::collection::vec(0u64..64, 0..200)).prop_map(
            move |(center, offs)| offs
                .iter()
                .map(|o| (center & mask).wrapping_add(*o) & mask)
                .collect()
        ),
        // Runs.
        proptest::collection::vec((any::<u64>(), 1usize..20), 0..20).prop_map(move |runs| {
            runs.iter()
                .flat_map(|(v, n)| std::iter::repeat_n(*v & mask, *n))
                .collect()
        }),
    ]
}

proptest! {
    #[test]
    fn delta_roundtrip(data in data_strategy(u64::MAX)) {
        roundtrip_exact(&DeltaCodec::new(), &data);
    }

    #[test]
    fn bpc32_roundtrip(data in data_strategy(u32::MAX as u64)) {
        roundtrip_exact(&BpcCodec::new(ElemWidth::W32), &data);
    }

    #[test]
    fn bpc64_roundtrip(data in data_strategy(u64::MAX)) {
        roundtrip_exact(&BpcCodec::new(ElemWidth::W64), &data);
    }

    #[test]
    fn rle_roundtrip(data in data_strategy(u64::MAX)) {
        roundtrip_exact(&RleCodec::new(), &data);
    }

    #[test]
    fn identity_roundtrip(data in data_strategy(u64::MAX)) {
        roundtrip_exact(&IdentityCodec::new(ElemWidth::W64), &data);
    }

    #[test]
    fn sorted_roundtrip_is_chunk_multiset(data in data_strategy(u32::MAX as u64)) {
        let codec = SortedChunks::new(DeltaCodec::new());
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for (got, want) in out.chunks(CHUNK_ELEMS).zip(data.chunks(CHUNK_ELEMS)) {
            let mut want = want.to_vec();
            want.sort_unstable();
            prop_assert_eq!(got, &want[..]);
            // And each chunk really is sorted.
            prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn bdi_roundtrip(bytes in proptest::collection::vec(any::<u8>(), LINE_BYTES)) {
        let line: [u8; LINE_BYTES] = bytes.try_into().unwrap();
        let enc = bdi::compress_line(&line);
        prop_assert_eq!(bdi::decompress_line(&enc), line);
        prop_assert!(enc.len() <= LINE_BYTES + 1);
    }

    #[test]
    fn decompress_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Codecs must reject or decode arbitrary input, never panic.
        // (Headers can claim huge element counts; cap the damage by
        // ignoring results.)
        for codec in [
            Box::new(DeltaCodec::new()) as Box<dyn Codec>,
            Box::new(BpcCodec::new(ElemWidth::W32)),
            Box::new(BpcCodec::new(ElemWidth::W64)),
            Box::new(RleCodec::new()),
        ] {
            let mut out = Vec::new();
            let _ = codec.decompress(&bytes, &mut out);
        }
    }
}
