#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Compression codecs used by the SpZip engines.
//!
//! This crate implements the (de)compression algorithms that the SpZip paper's
//! decompression and compression units support:
//!
//! * [`delta`] — delta *byte code* encoding (Sec. III-B of the paper): each
//!   value is encoded as the difference from its predecessor, emitted in the
//!   smallest number of bytes it fits in, with a small length prefix. This is
//!   the format Ligra+ calls a byte code, and is the paper's choice for short
//!   streams such as individual neighbor sets.
//! * [`bpc`] — Bit-Plane Compression (Kim et al., ISCA 2016): a delta +
//!   bit-plane transform with symbol encoding, effective on longer chunks
//!   (32 elements) such as update bins.
//! * [`bdi`] — Base-Delta-Immediate compression of 64-byte cache lines, used
//!   by the compressed-memory-hierarchy *baseline* (Fig. 22), not by SpZip
//!   itself.
//! * [`rle`] — run-length encoding, one of the format classes the DCL's
//!   operator set is designed to host.
//! * [`sorted`] — the paper's order-insensitive-data optimization
//!   (Sec. III-C): sort each 32-element chunk before compression, which
//!   places similar values nearby and improves both delta and BPC ratios.
//!
//! All stream codecs implement the [`Codec`] trait over `u64` element
//! streams; 32-bit data is carried in the low half (the element width is a
//! codec parameter where it matters, as in BPC).
//!
//! # Examples
//!
//! ```
//! use spzip_compress::{Codec, delta::DeltaCodec};
//!
//! let codec = DeltaCodec::new();
//! let neighbors: Vec<u64> = vec![100, 104, 105, 130, 131, 140];
//! let mut compressed = Vec::new();
//! codec.compress(&neighbors, &mut compressed);
//! assert!(compressed.len() < neighbors.len() * 8);
//!
//! let mut out = Vec::new();
//! codec.decompress(&compressed, &mut out).unwrap();
//! assert_eq!(out, neighbors);
//! ```

pub mod bdi;
pub mod bpc;
pub mod delta;
pub mod kernel;
pub mod model;
pub mod reference;
pub mod rle;
pub mod sanitize;
pub mod sorted;
pub mod stats;
pub mod varint;

use std::error::Error;
use std::fmt;

/// Version of the codec implementations, bumped whenever any codec's
/// encoded format or behaviour changes. Included in the bench driver's
/// cache fingerprint so cached simulation results invalidate when a codec
/// changes underneath them.
pub const CODEC_VERSION: u32 = 1;

/// Number of elements per compression chunk used throughout the crate.
///
/// The paper compresses order-insensitive data in 32-element chunks and notes
/// BPC "needs longer chunks (e.g., 32 elements) to compress effectively".
pub const CHUNK_ELEMS: usize = 32;

/// Error returned when a compressed stream cannot be decoded.
///
/// The message describes the first malformed construct encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    detail: String,
}

impl DecodeError {
    /// Creates a decode error with the given detail message.
    pub fn new(detail: impl Into<String>) -> Self {
        DecodeError {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for truncated-input errors.
    pub fn truncated(what: &str) -> Self {
        DecodeError::new(format!("input truncated while reading {what}"))
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid compressed stream: {}", self.detail)
    }
}

impl Error for DecodeError {}

/// Element width of a compressed stream.
///
/// SpZip's decompression unit supports 32- and 64-bit elements (Sec. III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElemWidth {
    /// 32-bit elements (e.g. vertex ids, distances, degree counts).
    #[default]
    W32,
    /// 64-bit elements (e.g. `{dst, contrib}` update tuples).
    W64,
}

impl ElemWidth {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            ElemWidth::W32 => 32,
            ElemWidth::W64 => 64,
        }
    }

    /// Width in bytes.
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Mask selecting the meaningful low bits of an element.
    pub fn mask(self) -> u64 {
        match self {
            ElemWidth::W32 => u32::MAX as u64,
            ElemWidth::W64 => u64::MAX,
        }
    }
}

impl fmt::Display for ElemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// Reusable staging buffers for codec hot paths.
///
/// Engine call sites compress and decompress thousands of 32-element chunks;
/// allocating staging vectors per call dominated those loops. A `Scratch`
/// lives with the call site (usually inside a [`CodecCtx`]) and is handed to
/// [`Codec::compress_with`], which clears and reuses it instead of
/// allocating. Buffers only ever grow, so steady state is allocation free.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Element-value staging (e.g. the sorted copy of a chunk).
    pub values: Vec<u64>,
    /// Encoded-byte staging.
    pub bytes: Vec<u8>,
}

impl Scratch {
    /// Creates an empty scratch. Buffers grow on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// A lossless stream codec over `u64` elements.
///
/// Implementations must round-trip exactly: `decompress(compress(x)) == x`
/// (the [`sorted::SortedChunks`] wrapper relaxes this to per-chunk multiset
/// equality, which is documented there).
pub trait Codec: fmt::Debug {
    /// Short human-readable codec name (e.g. `"delta"`, `"bpc32"`).
    fn name(&self) -> &'static str;

    /// Compresses `input`, appending one self-delimiting *frame* to `out`.
    fn compress(&self, input: &[u64], out: &mut Vec<u8>);

    /// Compresses `input` using caller-provided scratch buffers, appending
    /// one frame to `out`. Output is identical to [`Codec::compress`]; the
    /// default implementation simply forwards. Codecs that need internal
    /// staging (e.g. [`sorted::SortedChunks`]) override this to reuse
    /// `scratch` instead of allocating per call — engine call sites should
    /// prefer this entry point (or [`CodecCtx`], which calls it).
    fn compress_with(&self, input: &[u64], out: &mut Vec<u8>, scratch: &mut Scratch) {
        let _ = scratch;
        self.compress(input, out);
    }

    /// Decodes one frame starting at `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bytes at `*pos` are not a valid frame.
    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError>;

    /// Decompresses a single-frame `input`, appending decoded elements.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a malformed frame or trailing bytes.
    fn decompress(&self, input: &[u8], out: &mut Vec<u64>) -> Result<(), DecodeError> {
        let mut pos = 0;
        self.decode_frame(input, &mut pos, out)?;
        if pos != input.len() {
            return Err(DecodeError::new("trailing bytes after frame"));
        }
        Ok(())
    }

    /// Decompresses a concatenation of frames — the layout of SpZip's
    /// append-mode bins, where independently compressed 32-element chunks
    /// are written back to back.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if any frame is malformed.
    fn decompress_frames(&self, input: &[u8], out: &mut Vec<u64>) -> Result<(), DecodeError> {
        let mut pos = 0;
        while pos < input.len() {
            self.decode_frame(input, &mut pos, out)?;
        }
        Ok(())
    }

    /// Convenience: compressed size in bytes of `input`.
    fn compressed_len(&self, input: &[u64]) -> usize {
        let mut buf = Vec::new();
        self.compress(input, &mut buf);
        buf.len()
    }
}

/// The set of stream codecs selectable by the SpZip engines.
///
/// Applications pick the best of delta encoding and BPC per data structure
/// (Sec. IV "Schemes"); `None` is the identity used for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Identity: data is stored uncompressed.
    #[default]
    None,
    /// Delta byte-code encoding.
    Delta,
    /// Bit-plane compression over 32-bit elements.
    Bpc32,
    /// Bit-plane compression over 64-bit elements.
    Bpc64,
    /// Run-length encoding.
    Rle,
}

impl CodecKind {
    /// Instantiates the codec this kind names.
    pub fn build(self) -> Box<dyn Codec + Send + Sync> {
        match self {
            CodecKind::None => Box::new(IdentityCodec::new(ElemWidth::W64)),
            CodecKind::Delta => Box::new(delta::DeltaCodec::new()),
            CodecKind::Bpc32 => Box::new(bpc::BpcCodec::new(ElemWidth::W32)),
            CodecKind::Bpc64 => Box::new(bpc::BpcCodec::new(ElemWidth::W64)),
            CodecKind::Rle => Box::new(rle::RleCodec::new()),
        }
    }

    /// All selectable kinds, useful for sweeps.
    pub fn all() -> [CodecKind; 5] {
        [
            CodecKind::None,
            CodecKind::Delta,
            CodecKind::Bpc32,
            CodecKind::Bpc64,
            CodecKind::Rle,
        ]
    }

    /// The element width this codec is defined over, when it is
    /// width-specific: the bit-plane codecs transpose fixed-width words,
    /// so pairing them with any other operator width silently misframes
    /// the stream. Width-agnostic codecs return `None`.
    pub fn natural_elem_bytes(self) -> Option<u8> {
        match self {
            CodecKind::Bpc32 => Some(4),
            CodecKind::Bpc64 => Some(8),
            CodecKind::None | CodecKind::Delta | CodecKind::Rle => None,
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodecKind::None => "none",
            CodecKind::Delta => "delta",
            CodecKind::Bpc32 => "bpc32",
            CodecKind::Bpc64 => "bpc64",
            CodecKind::Rle => "rle",
        };
        f.write_str(s)
    }
}

/// A built codec bundled with its reusable [`Scratch`]: the allocation-free
/// handle engine call sites hold across many per-chunk codec calls.
///
/// Building a `Box<dyn Codec>` and fresh staging vectors per chunk was the
/// dominant overhead at the `sim`/`mem` and apps-runtime call sites; a
/// `CodecCtx` amortizes both. [`CodecCtx::ensure`] caches a context in an
/// `Option` slot, rebuilding only when the requested [`CodecKind`] changes.
#[derive(Debug)]
pub struct CodecCtx {
    kind: CodecKind,
    codec: Box<dyn Codec + Send + Sync>,
    scratch: Scratch,
}

impl CodecCtx {
    /// Builds the codec for `kind` with empty scratch buffers.
    pub fn new(kind: CodecKind) -> Self {
        CodecCtx {
            kind,
            codec: kind.build(),
            scratch: Scratch::new(),
        }
    }

    /// The kind this context was built for.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// The underlying codec.
    pub fn codec(&self) -> &(dyn Codec + Send + Sync) {
        &*self.codec
    }

    /// Returns the context in `slot`, (re)building it only if the slot is
    /// empty or was built for a different kind.
    pub fn ensure(slot: &mut Option<CodecCtx>, kind: CodecKind) -> &mut CodecCtx {
        if slot.as_ref().map(CodecCtx::kind) != Some(kind) {
            *slot = Some(CodecCtx::new(kind));
        }
        slot.as_mut().expect("slot populated above")
    }

    /// Compresses one frame through [`Codec::compress_with`], reusing this
    /// context's scratch buffers.
    pub fn compress(&mut self, input: &[u64], out: &mut Vec<u8>) {
        self.codec.compress_with(input, out, &mut self.scratch);
    }

    /// Decodes one frame starting at `*pos` (see [`Codec::decode_frame`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bytes at `*pos` are not a valid frame.
    pub fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        self.codec.decode_frame(input, pos, out)
    }

    /// Decompresses a single-frame `input` (see [`Codec::decompress`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a malformed frame or trailing bytes.
    pub fn decompress(&self, input: &[u8], out: &mut Vec<u64>) -> Result<(), DecodeError> {
        self.codec.decompress(input, out)
    }

    /// Decompresses concatenated frames (see [`Codec::decompress_frames`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if any frame is malformed.
    pub fn decompress_frames(&self, input: &[u8], out: &mut Vec<u64>) -> Result<(), DecodeError> {
        self.codec.decompress_frames(input, out)
    }
}

/// The identity codec: stores elements verbatim at their element width.
///
/// Used as the "no compression" arm of ablation studies (Fig. 20) so that the
/// decoupled-fetching-only configuration exercises the same code path.
#[derive(Debug, Clone, Copy)]
pub struct IdentityCodec {
    width: ElemWidth,
}

impl IdentityCodec {
    /// Creates an identity codec storing elements at `width`.
    pub fn new(width: ElemWidth) -> Self {
        IdentityCodec { width }
    }
}

impl Codec for IdentityCodec {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        kernel::identity_compress(self.width, input, out);
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        kernel::identity_decode_frame(self.width, input, pos, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_width_accessors() {
        assert_eq!(ElemWidth::W32.bits(), 32);
        assert_eq!(ElemWidth::W64.bytes(), 8);
        assert_eq!(ElemWidth::W32.mask(), 0xFFFF_FFFF);
        assert_eq!(ElemWidth::W32.to_string(), "32-bit");
    }

    #[test]
    fn decode_error_display_nonempty() {
        let e = DecodeError::truncated("header");
        assert!(e.to_string().contains("header"));
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn identity_roundtrip() {
        for width in [ElemWidth::W32, ElemWidth::W64] {
            let codec = IdentityCodec::new(width);
            let data: Vec<u64> = (0..100).map(|i| (i * 37) & width.mask()).collect();
            let mut buf = Vec::new();
            codec.compress(&data, &mut buf);
            let mut out = Vec::new();
            codec.decompress(&buf, &mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn identity_rejects_truncated() {
        let codec = IdentityCodec::new(ElemWidth::W64);
        let mut buf = Vec::new();
        codec.compress(&[1, 2, 3], &mut buf);
        buf.truncate(buf.len() - 1);
        let mut out = Vec::new();
        assert!(codec.decompress(&buf, &mut out).is_err());
    }

    #[test]
    fn codec_kind_builds_every_kind() {
        for kind in CodecKind::all() {
            let codec = kind.build();
            let data: Vec<u64> = (0..64).map(|i| i as u64 * 3).collect();
            let mut buf = Vec::new();
            codec.compress(&data, &mut buf);
            let mut out = Vec::new();
            codec.decompress(&buf, &mut out).unwrap();
            assert_eq!(out, data, "kind {kind}");
        }
    }

    #[test]
    fn codec_kind_display_is_lowercase() {
        for kind in CodecKind::all() {
            let s = kind.to_string();
            assert_eq!(s, s.to_lowercase());
        }
    }
}
