//! Run-length encoding, one of the compression formats the DCL's operator
//! set is designed to host (Sec. II-A lists run-length encoding among the
//! formats a system may support).
//!
//! Effective on highly repetitive streams such as degree counts of low-degree
//! vertices or dense-frontier bitmaps.

use crate::{kernel, varint, Codec, DecodeError};

/// Decompression-bomb guard: [`RleCodec::decompress`] refuses streams that
/// expand beyond this many elements (a few bytes of RLE can claim billions).
pub const MAX_DECODED_ELEMS: usize = 1 << 28;

/// Run-length codec over `(value, run)` pairs with varint-coded fields.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, rle::RleCodec};
///
/// let data = vec![7u64; 1000];
/// let codec = RleCodec::new();
/// assert!(codec.compressed_len(&data) < 16);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec {
    _private: (),
}

impl RleCodec {
    /// Creates a run-length codec.
    pub fn new() -> Self {
        RleCodec { _private: () }
    }
}

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        varint::write_u64(out, input.len() as u64);
        let mut i = 0;
        while i < input.len() {
            let value = input[i];
            let mut run = 1u64;
            while i + (run as usize) < input.len() && input[i + run as usize] == value {
                run += 1;
            }
            varint::write_u64(out, value);
            varint::write_u64(out, run);
            i += run as usize;
        }
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let total = varint::read_u64(input, pos)? as usize;
        if total > MAX_DECODED_ELEMS {
            return Err(DecodeError::new("RLE stream exceeds decode size limit"));
        }
        // Header counts are untrusted input: cap the speculative reserve.
        out.reserve(total.min(1 << 20));
        let mut decoded = 0usize;
        while decoded < total {
            let value = kernel::read_varint_fast(input, pos)?;
            let run = kernel::read_varint_fast(input, pos)? as usize;
            if run == 0 || decoded + run > total {
                return Err(DecodeError::new("RLE run length out of range"));
            }
            // Singleton runs dominate incompressible streams; skip the
            // repeat-iterator machinery for them.
            if run == 1 {
                out.push(value);
            } else {
                out.extend(std::iter::repeat_n(value, run));
            }
            decoded += run;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64]) {
        let codec = RleCodec::new();
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_runs_and_singles() {
        roundtrip(&[1, 1, 1, 2, 3, 3, 4]);
        roundtrip(&[u64::MAX; 5]);
        roundtrip(&[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn long_run_compresses_to_constant_size() {
        let codec = RleCodec::new();
        let small = codec.compressed_len(&[9u64; 10]);
        let large = codec.compressed_len(&vec![9u64; 1_000_000]);
        assert!(large <= small + 4);
    }

    #[test]
    fn zero_run_is_rejected() {
        // header: 1 element; then value=5, run=0.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1);
        varint::write_u64(&mut buf, 5);
        varint::write_u64(&mut buf, 0);
        let mut out = Vec::new();
        assert!(RleCodec::new().decompress(&buf, &mut out).is_err());
    }

    #[test]
    fn overlong_run_is_rejected() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        varint::write_u64(&mut buf, 5);
        varint::write_u64(&mut buf, 3);
        let mut out = Vec::new();
        assert!(RleCodec::new().decompress(&buf, &mut out).is_err());
    }
}
