//! Fixed-size-batch codec kernels: the chunked, branch-free encode/decode
//! primitives behind every stream codec's hot path.
//!
//! The paper's DCL engines assume (de)compression sustains GB/s against the
//! memory hierarchy; scalar byte-at-a-time loops do not. This module
//! provides the kernel layer the codecs are built on:
//!
//! * **Latent batches** — encoders consume [`BATCH`]-element (32) batches
//!   of `u64` lanes; [`zigzag_delta_batch`] turns a batch into ZigZag
//!   deltas in one pass with no per-element branching.
//! * **Branch-free classification** — the delta byte-code's two-bit size
//!   classes come from the [`CLASS_BY_BITS`] lookup table (indexed by
//!   significant bits) instead of a compare chain, and decode offsets for
//!   a whole four-delta group come from the const-built control-byte
//!   tables ([`GROUP_OFFSETS`]/[`GROUP_PAYLOAD`]), so one control byte
//!   resolves all four payload positions with no data-dependent branches.
//! * **Bit-packing over word lanes** — BPC's bit-plane transform is a
//!   32×32 bit-matrix transpose ([`transpose_32x32`]) over `u32` plane
//!   words (two of them side by side form the 64-bit lanes of W64 data),
//!   replacing the per-bit gather loops of the scalar implementation.
//! * **Fast/tail split** — every kernel runs an unconditional fast path
//!   while a full batch (and input slack for unaligned 8-byte loads) is
//!   available, then finishes with a bounds-checked scalar tail. The tail
//!   paths live here too; the *original* scalar implementations are
//!   preserved unmodified in [`reference`](crate::reference) as the
//!   differential oracle and are never called from this module.
//!
//! All kernels are wire-compatible with the scalar reference: encoders
//! produce byte-identical frames and decoders accept exactly the same
//! inputs ([`CODEC_VERSION`](crate::CODEC_VERSION) is unchanged). This is
//! enforced by `tests/differential.rs`.

use crate::varint::{unzigzag, zigzag};
use crate::{varint, DecodeError, ElemWidth, CHUNK_ELEMS};

/// Elements per latent batch: one compression chunk (32, per Sec. III-C).
pub const BATCH: usize = CHUNK_ELEMS;

/// Payload byte lengths selected by the delta codec's two-bit size class.
pub const CLASS_LEN: [usize; 4] = [1, 2, 4, 8];

/// Low-bits masks matching [`CLASS_LEN`]: `CLASS_MASK[c]` keeps the
/// `CLASS_LEN[c]` low bytes of an unaligned 8-byte load.
pub const CLASS_MASK: [u64; 4] = [0xFF, 0xFFFF, 0xFFFF_FFFF, u64::MAX];

/// Size class of a ZigZag delta, indexed by significant bit count (0..=64):
/// ≤8 bits → class 0 (1 byte), ≤16 → 1 (2 bytes), ≤32 → 2 (4 bytes),
/// else 3 (8 bytes). Replaces the encoder's compare chain with one load.
pub const CLASS_BY_BITS: [u8; 65] = {
    let mut t = [0u8; 65];
    let mut bits = 0;
    while bits <= 64 {
        t[bits] = if bits <= 8 {
            0
        } else if bits <= 16 {
            1
        } else if bits <= 32 {
            2
        } else {
            3
        };
        bits += 1;
    }
    t
};

/// Per-control-byte payload offsets of the four deltas in a group. Lets
/// the decoder issue all four unaligned loads of a group without waiting
/// on sequentially accumulated lengths.
pub const GROUP_OFFSETS: [[u8; 4]; 256] = {
    let mut t = [[0u8; 4]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut off = 0u8;
        let mut i = 0;
        while i < 4 {
            t[c][i] = off;
            off += CLASS_LEN[(c >> (2 * i)) & 0b11] as u8;
            i += 1;
        }
        c += 1;
    }
    t
};

/// Total payload bytes of a four-delta group, per control byte.
pub const GROUP_PAYLOAD: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        t[c] = (CLASS_LEN[c & 3] + CLASS_LEN[(c >> 2) & 3]) as u8
            + (CLASS_LEN[(c >> 4) & 3] + CLASS_LEN[(c >> 6) & 3]) as u8;
        c += 1;
    }
    t
};

/// Size class of one ZigZag delta (branch-free).
#[inline]
pub fn class_of(delta: u64) -> usize {
    CLASS_BY_BITS[(64 - delta.leading_zeros()) as usize] as usize
}

/// ZigZag deltas of a lane batch: `out[i] = zigzag(values[i] - values[i-1])`
/// with `prev` seeding the first difference. One pass, no branches.
#[inline]
pub fn zigzag_delta_batch(prev: u64, values: &[u64], out: &mut [u64]) {
    debug_assert_eq!(values.len(), out.len());
    let mut p = prev;
    for (o, &v) in out.iter_mut().zip(values) {
        *o = zigzag(v.wrapping_sub(p) as i64);
        p = v;
    }
}

/// In-place transpose of a 32×32 bit matrix held as 32 row words:
/// afterwards bit `i` of word `p` is what bit `p` of word `i` was.
///
/// This is the bit-packing primitive behind BPC: deltas (rows) become bit
/// planes (columns) in five butterfly stages instead of 33×31 single-bit
/// gathers. Transposition is an involution, so the same routine converts
/// planes back to deltas on decode.
pub fn transpose_32x32(a: &mut [u32; 32]) {
    let mut j = 16u32;
    let mut m = 0x0000_FFFFu32;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = ((a[k] >> j) ^ a[k | j as usize]) & m;
            a[k | j as usize] ^= t;
            a[k] ^= t << j;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

// ---------------------------------------------------------------------------
// Delta byte-code kernels
// ---------------------------------------------------------------------------

/// Kernel delta byte-code encoder: batch fast path over full 32-element
/// lane batches, scalar group tail. Byte-identical to
/// [`reference::delta_compress`](crate::reference::delta_compress).
pub fn delta_compress(input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    // Worst case: 8 payload bytes/element + 1 control byte per 4.
    out.reserve(input.len() * 8 + input.len() / 4 + 1);
    let mut prev = 0u64;
    let mut zz = [0u64; BATCH];
    let mut chunks = input.chunks_exact(BATCH);
    for chunk in chunks.by_ref() {
        zigzag_delta_batch(prev, chunk, &mut zz);
        prev = chunk[BATCH - 1];
        for group in zz.chunks_exact(4) {
            emit_group(group, out);
        }
    }
    // Tail path: remaining groups of up to four elements.
    let rem = chunks.remainder();
    let mut groups = rem.chunks_exact(4);
    let mut zz4 = [0u64; 4];
    for group in groups.by_ref() {
        zigzag_delta_batch(prev, group, &mut zz4);
        prev = group[3];
        emit_group(&zz4, out);
    }
    let last = groups.remainder();
    if !last.is_empty() {
        zigzag_delta_batch(prev, last, &mut zz4[..last.len()]);
        emit_group(&zz4[..last.len()], out);
    }
}

/// Emits one control byte plus payload for up to four ZigZag deltas,
/// staging the payload in a fixed 32-byte buffer so the output vector is
/// touched twice per group, not per byte.
#[inline]
fn emit_group(deltas: &[u64], out: &mut Vec<u8>) {
    let mut control = 0u8;
    let mut buf = [0u8; 32];
    let mut off = 0usize;
    for (i, &d) in deltas.iter().enumerate() {
        let class = class_of(d);
        control |= (class as u8) << (2 * i);
        buf[off..off + 8].copy_from_slice(&d.to_le_bytes());
        off += CLASS_LEN[class];
    }
    out.push(control);
    out.extend_from_slice(&buf[..off]);
}

/// Kernel delta byte-code frame decoder: while a full four-delta group and
/// eight bytes of load slack remain, one control-byte lookup resolves all
/// payload offsets and each delta is one masked unaligned load — no
/// per-element byte copying. Tail groups decode through the scalar path.
///
/// # Errors
///
/// Returns [`DecodeError`] on a malformed frame (same acceptance as the
/// scalar reference).
pub fn delta_decode_frame(
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let n = varint::read_u64(input, pos)? as usize;
    // Header counts are untrusted input: cap the speculative reserve.
    out.reserve(n.min(input.len().saturating_mul(4)));
    let mut prev = 0u64;
    let mut remaining = n;
    // Batched fast path: eight groups (one full latent batch) per flush.
    // Each group decodes through one 33-byte window (control + worst-case
    // 32-byte payload), so there is a single bounds check per group and
    // one `Vec` append per 32 elements. Loads may read up to 7 bytes past
    // a delta's payload but never past the window.
    let mut stage = [0u64; BATCH];
    while remaining >= BATCH && *pos + 8 * 40 <= input.len() {
        for g in 0..8 {
            let win: &[u8; 40] = input[*pos..*pos + 40].try_into().unwrap();
            let control = win[0] as usize;
            // Uniform control bytes (all four deltas in the same class)
            // dominate real streams — sorted ids give runs of all-small
            // groups, incompressible tuples give runs of all-large ones —
            // and the branch predictor locks onto them. Special-casing
            // them advances `pos` by a *constant*, collapsing the serial
            // control-byte→payload-table→position chain that otherwise
            // bounds decode at ~10 cycles per group.
            match control {
                0x00 => {
                    // Four one-byte deltas: one 4-byte load, lanes peeled
                    // in registers.
                    let lanes = u32::from_le_bytes(win[1..5].try_into().unwrap());
                    for i in 0..4 {
                        let delta = u64::from((lanes >> (8 * i)) & 0xFF);
                        prev = prev.wrapping_add(unzigzag(delta) as u64);
                        stage[g * 4 + i] = prev;
                    }
                    *pos += 5;
                }
                0x55 => {
                    // Four two-byte deltas: one 8-byte load.
                    let lanes = u64::from_le_bytes(win[1..9].try_into().unwrap());
                    for i in 0..4 {
                        let delta = (lanes >> (16 * i)) & 0xFFFF;
                        prev = prev.wrapping_add(unzigzag(delta) as u64);
                        stage[g * 4 + i] = prev;
                    }
                    *pos += 9;
                }
                0xAA => {
                    // Four four-byte deltas.
                    for i in 0..4 {
                        let delta =
                            u32::from_le_bytes(win[1 + 4 * i..5 + 4 * i].try_into().unwrap());
                        prev = prev.wrapping_add(unzigzag(u64::from(delta)) as u64);
                        stage[g * 4 + i] = prev;
                    }
                    *pos += 17;
                }
                0xFF => {
                    // Four eight-byte deltas.
                    for i in 0..4 {
                        let delta =
                            u64::from_le_bytes(win[1 + 8 * i..9 + 8 * i].try_into().unwrap());
                        prev = prev.wrapping_add(unzigzag(delta) as u64);
                        stage[g * 4 + i] = prev;
                    }
                    *pos += 33;
                }
                _ => {
                    let offsets = &GROUP_OFFSETS[control];
                    for i in 0..4 {
                        // `& 31` proves `9 + off <= 40` to the bounds
                        // checker (offsets are at most 24), so each delta
                        // is one masked unaligned load with no per-load
                        // branch.
                        let off = (offsets[i] & 31) as usize;
                        let word = u64::from_le_bytes(win[1 + off..9 + off].try_into().unwrap());
                        let delta = word & CLASS_MASK[(control >> (2 * i)) & 0b11];
                        prev = prev.wrapping_add(unzigzag(delta) as u64);
                        stage[g * 4 + i] = prev;
                    }
                    *pos += 1 + GROUP_PAYLOAD[control] as usize;
                }
            }
        }
        out.extend_from_slice(&stage);
        remaining -= BATCH;
    }
    // Group fast path: same masked-load decode, one group at a time, for
    // the region where a full eight-group window no longer fits.
    while remaining >= 4 && *pos + 1 + 32 <= input.len() {
        let win: &[u8; 33] = input[*pos..*pos + 33].try_into().unwrap();
        let control = win[0] as usize;
        let offsets = &GROUP_OFFSETS[control];
        let mut vals = [0u64; 4];
        for i in 0..4 {
            let off = offsets[i] as usize;
            let word = u64::from_le_bytes(win[1 + off..9 + off].try_into().unwrap());
            let delta = word & CLASS_MASK[(control >> (2 * i)) & 0b11];
            prev = prev.wrapping_add(unzigzag(delta) as u64);
            vals[i] = prev;
        }
        out.extend_from_slice(&vals);
        *pos += 1 + GROUP_PAYLOAD[control] as usize;
        remaining -= 4;
    }
    // Tail path: bounds-checked scalar groups.
    while remaining > 0 {
        let control = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("delta control byte"))?;
        *pos += 1;
        let in_group = remaining.min(4);
        for i in 0..in_group {
            let class = ((control >> (2 * i)) & 0b11) as usize;
            let len = CLASS_LEN[class];
            if *pos + len > input.len() {
                return Err(DecodeError::truncated("delta payload"));
            }
            let mut bytes = [0u8; 8];
            bytes[..len].copy_from_slice(&input[*pos..*pos + len]);
            *pos += len;
            let delta = unzigzag(u64::from_le_bytes(bytes));
            prev = prev.wrapping_add(delta as u64);
            out.push(prev);
        }
        remaining -= in_group;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// BPC kernels
// ---------------------------------------------------------------------------

const OP_ZERO_RUN: u8 = 0x00;
const OP_ALL_ONES: u8 = 0x01;
const OP_SINGLE_ONE: u8 = 0x02;
const OP_TWO_CONSEC: u8 = 0x03;
const OP_RAW: u8 = 0x04;

/// Maximum bit planes of any supported width (64-bit deltas + borrow bit).
pub const MAX_PLANES: usize = 65;

/// Number of bit planes for `width`: element bits + 1 (deltas carry a
/// borrow bit).
#[inline]
pub fn bpc_nplanes(width: ElemWidth) -> usize {
    width.bits() as usize + 1
}

/// Computes the DBX planes of a *full* [`BATCH`]-element chunk into `dbx`,
/// returning the plane count. The delta matrix is built lane-wise with
/// wrapping `u64` arithmetic (no `u128`), then rotated into planes with
/// [`transpose_32x32`] — one transpose for W32, two for W64, plus a
/// borrow-bit plane gathered separately.
pub fn bpc_dbx_planes_batch(width: ElemWidth, chunk: &[u64], dbx: &mut [u32; MAX_PLANES]) -> usize {
    debug_assert_eq!(chunk.len(), BATCH);
    let np = bpc_nplanes(width);
    let mut dbp = [0u32; MAX_PLANES];
    match width {
        ElemWidth::W32 => {
            let mut rows = [0u32; 32];
            let mut carries = 0u32;
            for i in 0..BATCH - 1 {
                // (width+1)-bit two's-complement delta: low bits and the
                // borrow bit both come from the wrapping u64 difference.
                let d = chunk[i + 1].wrapping_sub(chunk[i]);
                rows[i] = d as u32;
                carries |= (((d >> 32) & 1) as u32) << i;
            }
            transpose_32x32(&mut rows);
            dbp[..32].copy_from_slice(&rows);
            dbp[32] = carries;
        }
        ElemWidth::W64 => {
            let mut lo = [0u32; 32];
            let mut hi = [0u32; 32];
            let mut carries = 0u32;
            for i in 0..BATCH - 1 {
                let (a, b) = (chunk[i], chunk[i + 1]);
                let d = b.wrapping_sub(a);
                lo[i] = d as u32;
                hi[i] = (d >> 32) as u32;
                // Bit 64 of the 65-bit two's-complement delta is the borrow.
                carries |= ((b < a) as u32) << i;
            }
            transpose_32x32(&mut lo);
            transpose_32x32(&mut hi);
            dbp[..32].copy_from_slice(&lo);
            dbp[32..64].copy_from_slice(&hi);
            dbp[64] = carries;
        }
    }
    // DBX: XOR with the plane above; top plane kept as-is.
    dbx[np - 1] = dbp[np - 1];
    for p in 0..np - 1 {
        dbx[p] = dbp[p] ^ dbp[p + 1];
    }
    np
}

/// Computes the DBX planes of a *partial* chunk (2..[`BATCH`] elements):
/// the conditional tail path, bit-gathered scalar-style but allocation
/// free. Returns the plane count.
pub fn bpc_dbx_planes_tail(width: ElemWidth, chunk: &[u64], dbx: &mut [u32; MAX_PLANES]) -> usize {
    debug_assert!(chunk.len() >= 2 && chunk.len() <= BATCH);
    let np = bpc_nplanes(width);
    let mut dbp = [0u32; MAX_PLANES];
    for i in 0..chunk.len() - 1 {
        let (a, b) = (chunk[i], chunk[i + 1]);
        let d = b.wrapping_sub(a);
        for (p, plane) in dbp.iter_mut().enumerate().take(64.min(np)) {
            *plane |= (((d >> p) & 1) as u32) << i;
        }
        if np == MAX_PLANES {
            // W64 borrow bit (plane 64) is not reachable by u64 shifts.
            dbp[64] |= ((b < a) as u32) << i;
        } else {
            // W32: plane 32 is bit 32 of the u64 difference.
            dbp[32] |= (((d >> 32) & 1) as u32) << i;
        }
    }
    dbx[np - 1] = dbp[np - 1];
    for p in 0..np - 1 {
        dbx[p] = dbp[p] ^ dbp[p + 1];
    }
    np
}

/// Reconstructs the 31 non-base elements of a full chunk from its DBX
/// planes and pushes them onto `out`: XOR-scan back to DBP, transpose the
/// planes back into delta lanes, then a branch-free wrapping prefix sum.
/// Sign extension is unnecessary — additions are modular in the element
/// width, and the borrow plane only affects bits above it.
pub fn bpc_reconstruct_batch(width: ElemWidth, base: u64, dbx: &[u32], out: &mut Vec<u64>) {
    let np = dbx.len();
    debug_assert_eq!(np, bpc_nplanes(width));
    let mut dbp = [0u32; MAX_PLANES];
    dbp[np - 1] = dbx[np - 1];
    for p in (0..np - 1).rev() {
        dbp[p] = dbx[p] ^ dbp[p + 1];
    }
    let mut vals = [0u64; BATCH - 1];
    let mut prev = base;
    match width {
        ElemWidth::W32 => {
            let mut rows = [0u32; 32];
            rows.copy_from_slice(&dbp[..32]);
            transpose_32x32(&mut rows);
            for (i, v) in vals.iter_mut().enumerate() {
                prev = prev.wrapping_add(rows[i] as u64) & 0xFFFF_FFFF;
                *v = prev;
            }
        }
        ElemWidth::W64 => {
            let mut lo = [0u32; 32];
            let mut hi = [0u32; 32];
            lo.copy_from_slice(&dbp[..32]);
            hi.copy_from_slice(&dbp[32..64]);
            transpose_32x32(&mut lo);
            transpose_32x32(&mut hi);
            for (i, v) in vals.iter_mut().enumerate() {
                let d = lo[i] as u64 | ((hi[i] as u64) << 32);
                prev = prev.wrapping_add(d);
                *v = prev;
            }
        }
    }
    out.extend_from_slice(&vals);
}

/// Reconstructs the `n - 1` non-base elements of a partial chunk from its
/// DBX planes (tail path): per-element bit gather, allocation free.
pub fn bpc_reconstruct_tail(
    width: ElemWidth,
    base: u64,
    dbx: &[u32],
    n: usize,
    out: &mut Vec<u64>,
) {
    let np = dbx.len();
    debug_assert_eq!(np, bpc_nplanes(width));
    let mut dbp = [0u32; MAX_PLANES];
    dbp[np - 1] = dbx[np - 1];
    for p in (0..np - 1).rev() {
        dbp[p] = dbx[p] ^ dbp[p + 1];
    }
    let mask = width.mask();
    let mut prev = base;
    for i in 0..n - 1 {
        // Gather the low 64 delta bits; higher planes vanish modulo the
        // element width, so the borrow plane needs no special casing.
        let mut delta = 0u64;
        for (p, plane) in dbp.iter().enumerate().take(64.min(np)) {
            delta |= (((plane >> i) & 1) as u64) << p;
        }
        prev = prev.wrapping_add(delta) & mask;
        out.push(prev);
    }
}

/// Encodes DBX planes with the BPC symbol code, top plane first.
/// Byte-identical to the scalar reference's plane encoder.
pub fn bpc_encode_planes(planes: &[u32], out: &mut Vec<u8>, plane_bits: u32) {
    let all_ones: u32 = if plane_bits >= 32 {
        u32::MAX
    } else {
        (1 << plane_bits) - 1
    };
    let mut p = planes.len();
    // Encode from the top plane down: correlated data zeroes high planes.
    while p > 0 {
        p -= 1;
        let plane = planes[p];
        if plane == 0 {
            // Greedily absorb a run of zero planes.
            let mut run = 1u32;
            while p > 0 && planes[p - 1] == 0 && run < 255 {
                p -= 1;
                run += 1;
            }
            out.push(OP_ZERO_RUN);
            out.push(run as u8);
        } else if plane == all_ones {
            out.push(OP_ALL_ONES);
        } else if plane.count_ones() == 1 {
            out.push(OP_SINGLE_ONE);
            out.push(plane.trailing_zeros() as u8);
        } else if plane.count_ones() == 2 && (plane >> plane.trailing_zeros()) == 0b11 {
            out.push(OP_TWO_CONSEC);
            out.push(plane.trailing_zeros() as u8);
        } else {
            out.push(OP_RAW);
            out.extend_from_slice(&plane.to_le_bytes());
        }
    }
}

/// Decodes BPC plane symbols into the caller-provided `planes` buffer
/// (filling all of it), with no allocation. Accepts exactly the inputs the
/// scalar reference accepts.
///
/// # Errors
///
/// Returns [`DecodeError`] on a truncated or malformed symbol stream.
pub fn bpc_decode_planes(
    input: &[u8],
    pos: &mut usize,
    planes: &mut [u32],
    plane_bits: u32,
) -> Result<(), DecodeError> {
    let all_ones: u32 = if plane_bits >= 32 {
        u32::MAX
    } else {
        (1 << plane_bits) - 1
    };
    let mut p = planes.len();
    while p > 0 {
        let op = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("BPC opcode"))?;
        *pos += 1;
        match op {
            OP_ZERO_RUN => {
                let run = *input
                    .get(*pos)
                    .ok_or_else(|| DecodeError::truncated("BPC zero-run length"))?
                    as usize;
                *pos += 1;
                if run == 0 || run > p {
                    return Err(DecodeError::new("BPC zero-run out of range"));
                }
                for _ in 0..run {
                    p -= 1;
                    planes[p] = 0;
                }
            }
            OP_ALL_ONES => {
                p -= 1;
                planes[p] = all_ones;
            }
            OP_SINGLE_ONE | OP_TWO_CONSEC => {
                let bit = *input
                    .get(*pos)
                    .ok_or_else(|| DecodeError::truncated("BPC bit position"))?
                    as u32;
                *pos += 1;
                if bit >= plane_bits || (op == OP_TWO_CONSEC && bit + 1 >= plane_bits) {
                    return Err(DecodeError::new("BPC bit position out of range"));
                }
                p -= 1;
                planes[p] = if op == OP_SINGLE_ONE {
                    1 << bit
                } else {
                    0b11 << bit
                };
            }
            OP_RAW => {
                if *pos + 4 > input.len() {
                    return Err(DecodeError::truncated("BPC raw plane"));
                }
                p -= 1;
                planes[p] = u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap());
                *pos += 4;
            }
            other => {
                return Err(DecodeError::new(format!("unknown BPC opcode {other:#x}")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Identity kernels
// ---------------------------------------------------------------------------

/// Kernel identity encoder: reserves once and streams fixed-width words.
pub fn identity_compress(width: ElemWidth, input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    out.reserve(input.len() * width.bytes());
    match width {
        ElemWidth::W32 => {
            for &v in input {
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
        }
        ElemWidth::W64 => {
            for &v in input {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Kernel identity frame decoder: one bounds check for the whole payload,
/// then exact-chunk word loads the compiler can vectorize.
///
/// # Errors
///
/// Returns [`DecodeError`] if the payload is truncated.
pub fn identity_decode_frame(
    width: ElemWidth,
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let n = varint::read_u64(input, pos)? as usize;
    let need = n
        .checked_mul(width.bytes())
        .filter(|need| *pos + need <= input.len())
        .ok_or_else(|| DecodeError::truncated("identity element"))?;
    let payload = &input[*pos..*pos + need];
    out.reserve(n);
    match width {
        ElemWidth::W32 => out.extend(
            payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as u64),
        ),
        ElemWidth::W64 => out.extend(
            payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        ),
    }
    *pos += need;
    Ok(())
}

// ---------------------------------------------------------------------------
// Varint fast path (RLE hot loop)
// ---------------------------------------------------------------------------

/// Reads an LEB128 varint with a single up-front bounds check when a full
/// 10-byte window is available, falling back to the bounds-checked scalar
/// reader near the end of input. Accepts exactly what
/// [`varint::read_u64`] accepts.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or over-long varints.
#[inline]
pub fn read_varint_fast(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    // Single-byte fast path: frame headers, run lengths, and small values
    // overwhelmingly fit seven bits, so this branch is the hot loop.
    if let Some(&byte) = input.get(*pos) {
        if byte & 0x80 == 0 {
            *pos += 1;
            return Ok(u64::from(byte));
        }
        // Two-byte values are the next most common (runs, short deltas).
        if let Some(&next) = input.get(*pos + 1) {
            if next & 0x80 == 0 {
                *pos += 2;
                return Ok(u64::from(byte & 0x7F) | u64::from(next) << 7);
            }
        }
    }
    varint::read_u64(input, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_tables_match_compare_chain() {
        for d in [
            0u64,
            1,
            255,
            256,
            65_535,
            65_536,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX,
        ] {
            let expected = if d < 1 << 8 {
                0
            } else if d < 1 << 16 {
                1
            } else if d < 1 << 32 {
                2
            } else {
                3
            };
            assert_eq!(class_of(d), expected, "delta {d:#x}");
        }
    }

    #[test]
    fn group_tables_are_consistent() {
        for c in 0..256usize {
            let mut off = 0u8;
            for i in 0..4 {
                assert_eq!(GROUP_OFFSETS[c][i], off);
                off += CLASS_LEN[(c >> (2 * i)) & 3] as u8;
            }
            assert_eq!(GROUP_PAYLOAD[c], off);
        }
    }

    #[test]
    fn transpose_matches_naive_and_is_involution() {
        let mut m = [0u32; 32];
        for (i, row) in m.iter_mut().enumerate() {
            *row = (i as u32).wrapping_mul(0x9E37_79B9) ^ (i as u32) << 13;
        }
        let original = m;
        let mut naive = [0u32; 32];
        for (p, out_row) in naive.iter_mut().enumerate() {
            for (i, &row) in original.iter().enumerate() {
                *out_row |= ((row >> p) & 1) << i;
            }
        }
        transpose_32x32(&mut m);
        assert_eq!(m, naive);
        transpose_32x32(&mut m);
        assert_eq!(m, original);
    }

    #[test]
    fn varint_fast_matches_reference_reader() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        for &v in &values {
            varint::write_u64(&mut buf, v);
        }
        let (mut fast_pos, mut ref_pos) = (0usize, 0usize);
        for &v in &values {
            assert_eq!(read_varint_fast(&buf, &mut fast_pos).unwrap(), v);
            assert_eq!(varint::read_u64(&buf, &mut ref_pos).unwrap(), v);
            assert_eq!(fast_pos, ref_pos);
        }
        // Overlong and truncated inputs fail on both paths.
        let overlong = [0x80u8; 11];
        let mut p = 0;
        assert!(read_varint_fast(&overlong, &mut p).is_err());
        let truncated = [0x80u8, 0x80];
        let mut p = 0;
        assert!(read_varint_fast(&truncated, &mut p).is_err());
    }
}
