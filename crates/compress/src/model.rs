//! Analytical codec ratio models: predict compressed bytes per element
//! from first-order stream statistics, without running a codec.
//!
//! The static performance analyzer (`spzip_core::perf`) needs to reason
//! about a pipeline's memory footprint *before* any data flows: "will this
//! [`CodecKind`] shrink or inflate this stream?". The
//! key observation (shared with Copernicus-style format models) is that
//! every format in this crate has a closed-form size once a handful of
//! distribution statistics are known:
//!
//! * **Delta byte-code**: size-class shares of the zigzag deltas determine
//!   the payload exactly; the control byte adds a fixed 1/4 byte/element.
//! * **BPC**: the number of significant delta bits bounds the non-zero DBX
//!   planes; zero planes collapse into run tokens.
//! * **RLE**: mean run length and mean varint width of the values.
//! * **Identity**: the stored width plus the chunk header.
//!
//! [`StreamProfile::from_values`] measures those statistics in one cheap
//! pass (no encoder state, no output buffer); [`predicted_bytes_per_elem`]
//! turns a profile plus a codec kind into a bytes-per-element estimate.
//! The unit tests pin each estimate against the real codec's
//! [`compressed_len`](crate::Codec::compressed_len) on representative
//! streams, so model drift fails loudly.

use crate::CodecKind;

/// Byte sizes selected by the delta codec's two-bit length classes.
const DELTA_CLASS_BYTES: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Expected encoded bytes per *non-zero* DBX plane. Calibrated against
/// [`BpcCodec`](crate::bpc::BpcCodec): structured planes cost 1–2 bytes
/// (all-ones / single-one tokens), noisy low planes cost the full 5-byte
/// raw token; real mixes land in between.
const BPC_PLANE_BYTES: f64 = 3.4;

/// Expected bytes of zero-run tokens per BPC chunk (zero planes collapse
/// into a couple of 2-byte run tokens).
const BPC_ZERO_RUN_BYTES: f64 = 4.0;

/// Length in bytes of `value` as an LEB128 varint.
pub fn varint_len(value: u64) -> usize {
    ((64 - value.max(1).leading_zeros()) as usize).div_ceil(7)
}

/// First-order statistics of a value stream, sufficient to predict each
/// codec's compressed size analytically.
///
/// Profiles are measured per *compression chunk* — the unit one
/// `compress` call sees (a neighbor group, an update bin chunk, a vertex
/// slice) — because every codec resets its predictor state per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamProfile {
    /// Nominal raw element width in bytes (what the stream occupies
    /// uncompressed; 4 or 8 in this codebase).
    pub elem_bytes: u8,
    /// Elements per `compress` call (chunk). Headers amortize over this.
    pub chunk_elems: f64,
    /// Fraction of zigzag deltas falling in the delta codec's four size
    /// classes (1, 2, 4, 8 encoded bytes). Sums to 1 for non-empty streams.
    pub delta_class_shares: [f64; 4],
    /// Mean significant bits of the per-element deltas — the driver of
    /// BPC's non-zero DBX plane count.
    pub avg_delta_bits: f64,
    /// Mean run length of equal consecutive values (>= 1).
    pub avg_run_len: f64,
    /// Mean LEB128 length of the raw values, in bytes (RLE stores values
    /// as varints).
    pub avg_value_bytes: f64,
}

impl StreamProfile {
    /// Measures a profile from `values`, treating every `chunk_elems`
    /// window as one compression call (predictor state resets at chunk
    /// boundaries, exactly like the codecs). When `sort_chunks` is set,
    /// each chunk is sorted first — the profile for order-insensitive
    /// data compressed behind [`sorted`](crate::sorted) wrappers.
    pub fn from_values(
        values: &[u64],
        elem_bytes: u8,
        chunk_elems: usize,
        sort_chunks: bool,
    ) -> StreamProfile {
        let chunk_elems = chunk_elems.max(1);
        let mut class_counts = [0u64; 4];
        let mut delta_bits_sum = 0.0f64;
        let mut deltas = 0u64;
        let mut runs = 0u64;
        let mut value_bytes_sum = 0u64;
        let mut sorted_buf: Vec<u64> = Vec::new();
        for chunk in values.chunks(chunk_elems) {
            let chunk: &[u64] = if sort_chunks {
                sorted_buf.clear();
                sorted_buf.extend_from_slice(chunk);
                sorted_buf.sort_unstable();
                &sorted_buf
            } else {
                chunk
            };
            let mut prev = 0u64;
            let mut run_val = None;
            for &v in chunk {
                let zz = crate::varint::zigzag(v.wrapping_sub(prev) as i64);
                let class = match zz {
                    z if z < 1 << 8 => 0,
                    z if z < 1 << 16 => 1,
                    z if z < 1 << 32 => 2,
                    _ => 3,
                };
                class_counts[class] += 1;
                delta_bits_sum += (64 - zz.leading_zeros()) as f64;
                deltas += 1;
                prev = v;
                if run_val != Some(v) {
                    runs += 1;
                    run_val = Some(v);
                }
                value_bytes_sum += varint_len(v) as u64;
            }
        }
        let n = values.len().max(1) as f64;
        let mut shares = [0.0; 4];
        for (s, &c) in shares.iter_mut().zip(&class_counts) {
            *s = c as f64 / deltas.max(1) as f64;
        }
        StreamProfile {
            elem_bytes,
            chunk_elems: values.len().clamp(1, chunk_elems) as f64,
            delta_class_shares: shares,
            avg_delta_bits: delta_bits_sum / deltas.max(1) as f64,
            avg_run_len: n / runs.max(1) as f64,
            avg_value_bytes: value_bytes_sum as f64 / n,
        }
    }

    /// A conservative default for unknown data: deltas spread around the
    /// 2-byte class, few repeats — typical of reordered graph neighbor
    /// streams and mixed vertex data. Used by the analyzer when no
    /// measured profile is supplied.
    pub fn default_for(elem_bytes: u8) -> StreamProfile {
        StreamProfile {
            elem_bytes,
            chunk_elems: 32.0,
            delta_class_shares: [0.55, 0.30, 0.15, 0.0],
            avg_delta_bits: 9.0,
            avg_run_len: 1.1,
            avg_value_bytes: 3.0,
        }
    }

    /// The incompressible worst case: every delta needs the full element
    /// width, no runs. Predictions under this profile show whether a
    /// codec *inflates* hostile data.
    pub fn incompressible(elem_bytes: u8) -> StreamProfile {
        let shares = if elem_bytes <= 4 {
            [0.0, 0.0, 1.0, 0.0]
        } else {
            [0.0, 0.0, 0.0, 1.0]
        };
        StreamProfile {
            elem_bytes,
            chunk_elems: 32.0,
            delta_class_shares: shares,
            avg_delta_bits: elem_bytes as f64 * 8.0,
            avg_run_len: 1.0,
            avg_value_bytes: (elem_bytes as f64 * 8.0 / 7.0).ceil(),
        }
    }
}

/// Predicted compressed bytes per element for `kind` over a stream shaped
/// like `profile`. Deterministic and pure — the analyzer's only coupling
/// to codec internals.
pub fn predicted_bytes_per_elem(kind: CodecKind, profile: &StreamProfile) -> f64 {
    let n = profile.chunk_elems.max(1.0);
    let header = varint_len(n as u64) as f64;
    match kind {
        // Identity stores 8-byte words regardless of the logical element
        // width (`CodecKind::None` builds a W64 identity codec).
        CodecKind::None => (header + n * 8.0) / n,
        CodecKind::Delta => {
            let payload: f64 = profile
                .delta_class_shares
                .iter()
                .zip(&DELTA_CLASS_BYTES)
                .map(|(s, b)| s * b)
                .sum();
            (header + n * (0.25 + payload)) / n
        }
        CodecKind::Bpc32 | CodecKind::Bpc64 => {
            let (base_bytes, planes) = if kind == CodecKind::Bpc32 {
                (4.0, 33.0)
            } else {
                (8.0, 65.0)
            };
            // Elements are BPC-chunked in 32s inside each compress call.
            let bpc_chunks = (n / 32.0).max(1.0);
            let nonzero = (profile.avg_delta_bits + 1.0).min(planes);
            let per_chunk = base_bytes + BPC_ZERO_RUN_BYTES + nonzero * BPC_PLANE_BYTES;
            (header + bpc_chunks * per_chunk) / n
        }
        CodecKind::Rle => {
            let runs = (n / profile.avg_run_len.max(1.0)).max(1.0);
            let run_len_bytes = varint_len(profile.avg_run_len as u64) as f64;
            (header + runs * (profile.avg_value_bytes + run_len_bytes)) / n
        }
    }
}

/// Predicted compression ratio (raw bytes / compressed bytes) for `kind`
/// over `profile`; values below 1.0 mean predicted *inflation*.
pub fn predicted_ratio(kind: CodecKind, profile: &StreamProfile) -> f64 {
    profile.elem_bytes as f64 / predicted_bytes_per_elem(kind, profile)
}

/// The trajectory name `codec-bench` measures this kind under in
/// `BENCH_codecs.json` (`sort_chunks` selects the `delta_sorted` arm).
pub fn codec_trajectory_name(kind: CodecKind, sort_chunks: bool) -> &'static str {
    match kind {
        CodecKind::None => "identity",
        CodecKind::Delta if sort_chunks => "delta_sorted",
        CodecKind::Delta => "delta",
        CodecKind::Bpc32 => "bpc32",
        CodecKind::Bpc64 => "bpc64",
        CodecKind::Rle => "rle",
    }
}

/// Inverse of [`codec_trajectory_name`]: `(kind, sort_chunks)` for a
/// trajectory codec name, `None` for an unknown name.
pub fn codec_from_trajectory_name(name: &str) -> Option<(CodecKind, bool)> {
    match name {
        "identity" => Some((CodecKind::None, false)),
        "delta" => Some((CodecKind::Delta, false)),
        "delta_sorted" => Some((CodecKind::Delta, true)),
        "bpc32" => Some((CodecKind::Bpc32, false)),
        "bpc64" => Some((CodecKind::Bpc64, false)),
        "rle" => Some((CodecKind::Rle, false)),
        _ => None,
    }
}

/// Measured throughput of one codec, in GB/s of *uncompressed* stream
/// bytes (the unit `codec-bench` records on both directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecRates {
    /// Decode throughput (GB/s of decoded output).
    pub decode_gbps: f64,
    /// Encode throughput (GB/s of raw input).
    pub encode_gbps: f64,
}

/// Transform service rates may not be scaled below this fraction of the
/// fastest codec's rate: measured software kernels differ by orders of
/// magnitude, but the hardware transform units they calibrate share one
/// datapath, so relative cost is bounded.
pub const MIN_RATE_SCALE: f64 = 1.0 / 32.0;

/// Per-[`CodecKind`] throughput calibration for the static analyzers.
///
/// The perf flow model charges every (de)compression firing one engine
/// cycle at a *nominal* rate; a `RateTable` rescales that service cost by
/// each codec's measured throughput **relative to the fastest codec in
/// the table**. Relative — not absolute — because the measurements are
/// software-kernel GB/s while the model prices a hardware transform unit:
/// what the trajectory can honestly tell the model is how much more one
/// codec costs per byte than another, never the wall-clock rate of either.
///
/// [`RateTable::nominal`] gives every codec the same rate, so all scales
/// are 1.0 and a default-parameterized analysis is byte-identical to one
/// with no table at all. Calibration (feeding measured kernel rates from
/// `BENCH_codecs.json`) is what `dcl-perf --suggest` does.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTable {
    rates: [CodecRates; 5],
}

/// Index of `kind` in [`RateTable`]'s backing array ([`CodecKind::all`]
/// order).
fn rate_index(kind: CodecKind) -> usize {
    match kind {
        CodecKind::None => 0,
        CodecKind::Delta => 1,
        CodecKind::Bpc32 => 2,
        CodecKind::Bpc64 => 3,
        CodecKind::Rle => 4,
    }
}

impl Default for RateTable {
    fn default() -> Self {
        RateTable::nominal()
    }
}

impl RateTable {
    /// The uncalibrated table: every codec at the same rate, so every
    /// scale is exactly 1.0.
    pub fn nominal() -> RateTable {
        RateTable {
            rates: [CodecRates {
                decode_gbps: 1.0,
                encode_gbps: 1.0,
            }; 5],
        }
    }

    /// Records measured rates for `kind`. Non-positive rates are ignored
    /// (the nominal entry stands).
    pub fn set(&mut self, kind: CodecKind, rates: CodecRates) {
        if rates.decode_gbps > 0.0 && rates.encode_gbps > 0.0 {
            self.rates[rate_index(kind)] = rates;
        }
    }

    /// The recorded rates for `kind`.
    pub fn get(&self, kind: CodecKind) -> CodecRates {
        self.rates[rate_index(kind)]
    }

    /// Decode service scale for `kind`: its decode rate relative to the
    /// fastest decode rate in the table, clamped to
    /// [[`MIN_RATE_SCALE`], 1.0]. A transform firing costs `1 / scale`
    /// nominal firings.
    pub fn decode_scale(&self, kind: CodecKind) -> f64 {
        let best = self
            .rates
            .iter()
            .map(|r| r.decode_gbps)
            .fold(f64::MIN_POSITIVE, f64::max);
        (self.get(kind).decode_gbps / best).clamp(MIN_RATE_SCALE, 1.0)
    }

    /// Encode service scale for `kind`; see [`RateTable::decode_scale`].
    pub fn encode_scale(&self, kind: CodecKind) -> f64 {
        let best = self
            .rates
            .iter()
            .map(|r| r.encode_gbps)
            .fold(f64::MIN_POSITIVE, f64::max);
        (self.get(kind).encode_gbps / best).clamp(MIN_RATE_SCALE, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts model vs measured within `tol` relative error, per chunk.
    fn check(kind: CodecKind, values: &[u64], elem_bytes: u8, chunk: usize, tol: f64) {
        let codec = kind.build();
        let mut actual = 0usize;
        for c in values.chunks(chunk) {
            actual += codec.compressed_len(c);
        }
        let profile = StreamProfile::from_values(values, elem_bytes, chunk, false);
        let predicted = predicted_bytes_per_elem(kind, &profile) * values.len() as f64;
        let rel = (predicted - actual as f64).abs() / actual as f64;
        assert!(
            rel <= tol,
            "{kind}: predicted {predicted:.0} vs actual {actual} ({:.0}% off)",
            rel * 100.0
        );
    }

    fn neighbor_like() -> Vec<u64> {
        // Clustered ascending ids with occasional jumps, like a reordered
        // graph's neighbor groups.
        (0..4096u64)
            .map(|i| 100_000 + i * 3 + (i % 7) * 40 + if i % 61 == 0 { 90_000 } else { 0 })
            .collect()
    }

    #[test]
    fn delta_model_is_tight_on_clustered_ids() {
        check(CodecKind::Delta, &neighbor_like(), 4, 32, 0.05);
    }

    #[test]
    fn delta_model_exact_on_uniform_class() {
        // All deltas in one size class: model should be near-exact.
        let data: Vec<u64> = (0..1024u64).map(|i| i * 100).collect();
        check(CodecKind::Delta, &data, 4, 64, 0.02);
    }

    #[test]
    fn bpc_models_track_reality() {
        let slow: Vec<u64> = (0..2048u64).map(|i| 10_000 + i / 3).collect();
        check(CodecKind::Bpc32, &slow, 4, 256, 0.35);
        check(CodecKind::Bpc64, &slow, 8, 256, 0.35);
        check(CodecKind::Bpc64, &neighbor_like(), 8, 256, 0.35);
    }

    #[test]
    fn rle_model_tracks_repetitive_streams() {
        let data: Vec<u64> = (0..4096u64).map(|i| (i / 37) % 5).collect();
        check(CodecKind::Rle, &data, 8, 512, 0.25);
    }

    #[test]
    fn identity_model_is_exact() {
        let data: Vec<u64> = (0..500u64).collect();
        check(CodecKind::None, &data, 8, 100, 0.001);
    }

    #[test]
    fn incompressible_profile_predicts_inflation() {
        // Hostile 4-byte data: delta needs > 4 B/elem, identity needs 8.
        let p = StreamProfile::incompressible(4);
        assert!(predicted_ratio(CodecKind::Delta, &p) < 1.0);
        assert!(predicted_ratio(CodecKind::None, &p) < 1.0);
        // Friendly data: delta comfortably compresses.
        let good = StreamProfile::default_for(4);
        assert!(predicted_ratio(CodecKind::Delta, &good) > 1.5);
    }

    #[test]
    fn sorted_profile_improves_prediction() {
        // Shuffled ids (index striding by a coprime): sorting shrinks the
        // deltas from scattered to unit-sized.
        let data: Vec<u64> = (0..256u64).map(|i| 1000 + (i * 101) % 256).collect();
        let unsorted = StreamProfile::from_values(&data, 4, 32, false);
        let sorted = StreamProfile::from_values(&data, 4, 32, true);
        assert!(
            predicted_bytes_per_elem(CodecKind::Delta, &sorted)
                < predicted_bytes_per_elem(CodecKind::Delta, &unsorted)
        );
    }

    #[test]
    fn trajectory_names_roundtrip() {
        for kind in CodecKind::all() {
            for sort in [false, true] {
                let name = codec_trajectory_name(kind, sort);
                let (back, back_sort) = codec_from_trajectory_name(name).unwrap();
                assert_eq!(back, kind, "{name}");
                // Only delta has a distinct sorted arm.
                assert_eq!(back_sort, sort && kind == CodecKind::Delta, "{name}");
            }
        }
        assert!(codec_from_trajectory_name("zstd").is_none());
    }

    #[test]
    fn nominal_rate_table_scales_to_one() {
        let t = RateTable::nominal();
        for kind in CodecKind::all() {
            assert_eq!(t.decode_scale(kind), 1.0, "{kind}");
            assert_eq!(t.encode_scale(kind), 1.0, "{kind}");
        }
    }

    #[test]
    fn calibrated_rate_table_is_relative_and_clamped() {
        let mut t = RateTable::nominal();
        t.set(
            CodecKind::None,
            CodecRates {
                decode_gbps: 16.0,
                encode_gbps: 16.0,
            },
        );
        t.set(
            CodecKind::Delta,
            CodecRates {
                decode_gbps: 8.0,
                encode_gbps: 4.0,
            },
        );
        t.set(
            CodecKind::Bpc64,
            CodecRates {
                decode_gbps: 0.01,
                encode_gbps: 0.01,
            },
        );
        assert_eq!(t.decode_scale(CodecKind::None), 1.0);
        assert!((t.decode_scale(CodecKind::Delta) - 0.5).abs() < 1e-12);
        assert!((t.encode_scale(CodecKind::Delta) - 0.25).abs() < 1e-12);
        // Far-below-floor measurements clamp instead of exploding costs.
        assert_eq!(t.decode_scale(CodecKind::Bpc64), MIN_RATE_SCALE);
        // Non-positive rates are rejected; entry stays nominal (1.0 GB/s).
        t.set(
            CodecKind::Rle,
            CodecRates {
                decode_gbps: 0.0,
                encode_gbps: 5.0,
            },
        );
        assert_eq!(t.get(CodecKind::Rle).decode_gbps, 1.0);
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            crate::varint::write_u64(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "value {v}");
        }
    }
}
