//! Bit-Plane Compression (BPC), after Kim et al., ISCA 2016.
//!
//! BPC transforms a chunk of 32 elements as follows: the first element is the
//! *base*, and the remaining 31 elements are replaced by deltas from their
//! predecessor. The deltas (width+1-bit two's complement) are then rotated
//! into *bit planes* — plane `p` collects bit `p` of every delta — and
//! adjacent planes are XORed (the "delta-bitplane-XOR", DBX, transform).
//! Correlated data produces many all-zero DBX planes, which encode in a
//! couple of bits.
//!
//! The paper's implementation supports 32- and 64-bit elements and "uses a
//! simple byte-level symbol encoding for each bitplane" (Sec. III-E); we do
//! the same, with one opcode byte per symbol:
//!
//! | opcode | meaning                           | payload |
//! |--------|-----------------------------------|---------|
//! | `0x00` | run of all-zero planes            | 1 byte run length |
//! | `0x01` | all-ones plane                    | — |
//! | `0x02` | single one bit                    | 1 byte bit position |
//! | `0x03` | two consecutive one bits          | 1 byte first position |
//! | `0x04` | raw plane                         | 4 bytes LE |
//!
//! BPC needs long chunks to amortize the base, so the paper uses it for
//! longer streams (update bins, vertex data) and delta byte-code for short
//! neighbor sets.

use crate::{varint, Codec, DecodeError, ElemWidth, CHUNK_ELEMS};

const OP_ZERO_RUN: u8 = 0x00;
const OP_ALL_ONES: u8 = 0x01;
const OP_SINGLE_ONE: u8 = 0x02;
const OP_TWO_CONSEC: u8 = 0x03;
const OP_RAW: u8 = 0x04;

/// Bit-Plane Compression codec over 32-element chunks.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, ElemWidth, bpc::BpcCodec};
///
/// // Slowly-varying data (e.g. sorted update destinations) compresses well.
/// let data: Vec<u64> = (0..256).map(|i| 10_000 + i / 3).collect();
/// let codec = BpcCodec::new(ElemWidth::W32);
/// assert!(codec.compressed_len(&data) < data.len() * 4 / 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BpcCodec {
    width: ElemWidth,
}

impl BpcCodec {
    /// Creates a BPC codec for elements of `width`.
    pub fn new(width: ElemWidth) -> Self {
        BpcCodec { width }
    }

    /// Element width this codec was configured with.
    pub fn width(&self) -> ElemWidth {
        self.width
    }

    /// Number of bit planes: element width + 1 (deltas carry a borrow bit).
    fn planes(&self) -> u32 {
        self.width.bits() + 1
    }

    fn write_base(&self, out: &mut Vec<u8>, base: u64) {
        match self.width {
            ElemWidth::W32 => out.extend_from_slice(&(base as u32).to_le_bytes()),
            ElemWidth::W64 => out.extend_from_slice(&base.to_le_bytes()),
        }
    }

    fn read_base(&self, input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
        let bytes = self.width.bytes();
        if *pos + bytes > input.len() {
            return Err(DecodeError::truncated("BPC base"));
        }
        let base = match self.width {
            ElemWidth::W32 => u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap()) as u64,
            ElemWidth::W64 => u64::from_le_bytes(input[*pos..*pos + 8].try_into().unwrap()),
        };
        *pos += bytes;
        Ok(base)
    }

    /// Computes the DBX planes of a chunk. `chunk.len()` must be >= 2.
    fn dbx_planes(&self, chunk: &[u64]) -> Vec<u32> {
        let nbits = self.planes();
        let ndeltas = chunk.len() - 1;
        // (width+1)-bit two's-complement deltas, kept in u128 for W64.
        let modulus_mask: u128 = if nbits >= 128 {
            u128::MAX
        } else {
            (1u128 << nbits) - 1
        };
        let deltas: Vec<u128> = chunk
            .windows(2)
            .map(|w| ((w[1] as i128 - w[0] as i128) as u128) & modulus_mask)
            .collect();
        // DBP: plane p = bit p of each delta.
        let mut dbp = vec![0u32; nbits as usize];
        for (i, &d) in deltas.iter().enumerate() {
            for (p, plane) in dbp.iter_mut().enumerate() {
                *plane |= (((d >> p) & 1) as u32) << i;
            }
        }
        // DBX: XOR with the plane above; top plane kept as-is.
        let mut dbx = vec![0u32; nbits as usize];
        dbx[nbits as usize - 1] = dbp[nbits as usize - 1];
        for p in 0..nbits as usize - 1 {
            dbx[p] = dbp[p] ^ dbp[p + 1];
        }
        debug_assert!(ndeltas <= 31);
        dbx
    }

    fn encode_planes(planes: &[u32], out: &mut Vec<u8>, plane_bits: u32) {
        let all_ones: u32 = if plane_bits >= 32 {
            u32::MAX
        } else {
            (1 << plane_bits) - 1
        };
        let mut p = planes.len();
        // Encode from the top plane down: correlated data zeroes high planes.
        while p > 0 {
            p -= 1;
            let plane = planes[p];
            if plane == 0 {
                // Greedily absorb a run of zero planes.
                let mut run = 1u32;
                while p > 0 && planes[p - 1] == 0 && run < 255 {
                    p -= 1;
                    run += 1;
                }
                out.push(OP_ZERO_RUN);
                out.push(run as u8);
            } else if plane == all_ones {
                out.push(OP_ALL_ONES);
            } else if plane.count_ones() == 1 {
                out.push(OP_SINGLE_ONE);
                out.push(plane.trailing_zeros() as u8);
            } else if plane.count_ones() == 2 && (plane >> plane.trailing_zeros()) == 0b11 {
                out.push(OP_TWO_CONSEC);
                out.push(plane.trailing_zeros() as u8);
            } else {
                out.push(OP_RAW);
                out.extend_from_slice(&plane.to_le_bytes());
            }
        }
    }

    fn decode_planes(
        input: &[u8],
        pos: &mut usize,
        nplanes: usize,
        plane_bits: u32,
    ) -> Result<Vec<u32>, DecodeError> {
        let all_ones: u32 = if plane_bits >= 32 {
            u32::MAX
        } else {
            (1 << plane_bits) - 1
        };
        let mut planes = vec![0u32; nplanes];
        let mut p = nplanes;
        while p > 0 {
            let op = *input
                .get(*pos)
                .ok_or_else(|| DecodeError::truncated("BPC opcode"))?;
            *pos += 1;
            match op {
                OP_ZERO_RUN => {
                    let run = *input
                        .get(*pos)
                        .ok_or_else(|| DecodeError::truncated("BPC zero-run length"))?
                        as usize;
                    *pos += 1;
                    if run == 0 || run > p {
                        return Err(DecodeError::new("BPC zero-run out of range"));
                    }
                    for _ in 0..run {
                        p -= 1;
                        planes[p] = 0;
                    }
                }
                OP_ALL_ONES => {
                    p -= 1;
                    planes[p] = all_ones;
                }
                OP_SINGLE_ONE | OP_TWO_CONSEC => {
                    let bit = *input
                        .get(*pos)
                        .ok_or_else(|| DecodeError::truncated("BPC bit position"))?
                        as u32;
                    *pos += 1;
                    if bit >= plane_bits || (op == OP_TWO_CONSEC && bit + 1 >= plane_bits) {
                        return Err(DecodeError::new("BPC bit position out of range"));
                    }
                    p -= 1;
                    planes[p] = if op == OP_SINGLE_ONE {
                        1 << bit
                    } else {
                        0b11 << bit
                    };
                }
                OP_RAW => {
                    if *pos + 4 > input.len() {
                        return Err(DecodeError::truncated("BPC raw plane"));
                    }
                    p -= 1;
                    planes[p] = u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap());
                    *pos += 4;
                }
                other => {
                    return Err(DecodeError::new(format!("unknown BPC opcode {other:#x}")));
                }
            }
        }
        Ok(planes)
    }

    fn compress_chunk(&self, chunk: &[u64], out: &mut Vec<u8>) {
        debug_assert!(!chunk.is_empty() && chunk.len() <= CHUNK_ELEMS);
        out.push(chunk.len() as u8);
        self.write_base(out, chunk[0]);
        if chunk.len() < 2 {
            return;
        }
        let dbx = self.dbx_planes(chunk);
        Self::encode_planes(&dbx, out, (chunk.len() - 1) as u32);
    }

    fn decompress_chunk(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let n = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("BPC chunk length"))? as usize;
        *pos += 1;
        if n == 0 || n > CHUNK_ELEMS {
            return Err(DecodeError::new("BPC chunk length out of range"));
        }
        let base = self.read_base(input, pos)?;
        out.push(base);
        if n < 2 {
            return Ok(());
        }
        let nbits = self.planes() as usize;
        let dbx = Self::decode_planes(input, pos, nbits, (n - 1) as u32)?;
        // Invert DBX back to DBP.
        let mut dbp = vec![0u32; nbits];
        dbp[nbits - 1] = dbx[nbits - 1];
        for p in (0..nbits - 1).rev() {
            dbp[p] = dbx[p] ^ dbp[p + 1];
        }
        // Re-assemble the deltas and prefix-sum back to values.
        let mut prev = base;
        for i in 0..n - 1 {
            let mut delta: u128 = 0;
            for (p, plane) in dbp.iter().enumerate() {
                delta |= (((plane >> i) & 1) as u128) << p;
            }
            // Sign-extend the (width+1)-bit delta.
            let nb = self.planes();
            let signed = if delta >> (nb - 1) & 1 == 1 {
                (delta as i128) - (1i128 << nb)
            } else {
                delta as i128
            };
            prev = (prev as i128 + signed) as u64 & self.width.mask();
            out.push(prev);
        }
        Ok(())
    }
}

impl Codec for BpcCodec {
    fn name(&self) -> &'static str {
        match self.width {
            ElemWidth::W32 => "bpc32",
            ElemWidth::W64 => "bpc64",
        }
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        varint::write_u64(out, input.len() as u64);
        for chunk in input.chunks(CHUNK_ELEMS) {
            self.compress_chunk(chunk, out);
        }
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let total = varint::read_u64(input, pos)? as usize;
        // Header counts are untrusted input: cap the speculative reserve.
        out.reserve(total.min(input.len().saturating_mul(8)));
        let mut decoded = 0;
        while decoded < total {
            let before = out.len();
            self.decompress_chunk(input, pos, out)?;
            decoded += out.len() - before;
        }
        if decoded != total {
            return Err(DecodeError::new("BPC chunk sizes disagree with header"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(width: ElemWidth, data: &[u64]) {
        let codec = BpcCodec::new(width);
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        roundtrip(ElemWidth::W32, &[]);
        roundtrip(ElemWidth::W32, &[7]);
        roundtrip(ElemWidth::W64, &[u64::MAX]);
    }

    #[test]
    fn roundtrip_linear_sequences() {
        let data: Vec<u64> = (0..97).map(|i| 1000 + 3 * i).collect();
        roundtrip(ElemWidth::W32, &data);
        roundtrip(ElemWidth::W64, &data);
    }

    #[test]
    fn roundtrip_alternating() {
        let data: Vec<u64> = (0..64)
            .map(|i| if i % 2 == 0 { 5 } else { 4_000_000_000 })
            .collect();
        roundtrip(ElemWidth::W32, &data);
    }

    #[test]
    fn roundtrip_w64_extremes() {
        let data = [0u64, u64::MAX, 1, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
        roundtrip(ElemWidth::W64, &data);
    }

    #[test]
    fn roundtrip_partial_chunk_sizes() {
        for n in [1usize, 2, 31, 32, 33, 63, 64, 65] {
            let data: Vec<u64> = (0..n as u64).map(|i| i * 17 + 3).collect();
            roundtrip(ElemWidth::W32, &data);
        }
    }

    #[test]
    fn constant_data_compresses_dramatically() {
        let data = vec![123456u64; 256];
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        // 8 chunks x (len byte + 4-byte base + ~2 symbol bytes).
        assert!(size < 80, "size = {size}");
    }

    #[test]
    fn linear_data_beats_raw_substantially() {
        let data: Vec<u64> = (0..320).map(|i| 77 + i).collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        assert!(size * 4 < data.len() * 4, "size = {size}");
    }

    #[test]
    fn random_data_does_not_explode() {
        let data: Vec<u64> = (0..320)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 0xFFFF_FFFF)
            .collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        // Worst case: every plane raw = 33 * 5 bytes per 32-element chunk,
        // bounded by ~5.2 bytes/element.
        assert!(size < data.len() * 6, "size = {size}");
    }

    #[test]
    fn truncation_anywhere_is_an_error_or_caught() {
        let data: Vec<u64> = (0..40).map(|i| i * i).collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        for cut in 1..buf.len() {
            let mut out = Vec::new();
            assert!(
                codec.decompress(&buf[..cut], &mut out).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn width_accessor() {
        assert_eq!(BpcCodec::new(ElemWidth::W64).width(), ElemWidth::W64);
    }
}
