//! Bit-Plane Compression (BPC), after Kim et al., ISCA 2016.
//!
//! BPC transforms a chunk of 32 elements as follows: the first element is the
//! *base*, and the remaining 31 elements are replaced by deltas from their
//! predecessor. The deltas (width+1-bit two's complement) are then rotated
//! into *bit planes* — plane `p` collects bit `p` of every delta — and
//! adjacent planes are XORed (the "delta-bitplane-XOR", DBX, transform).
//! Correlated data produces many all-zero DBX planes, which encode in a
//! couple of bits.
//!
//! The paper's implementation supports 32- and 64-bit elements and "uses a
//! simple byte-level symbol encoding for each bitplane" (Sec. III-E); we do
//! the same, with one opcode byte per symbol:
//!
//! | opcode | meaning                           | payload |
//! |--------|-----------------------------------|---------|
//! | `0x00` | run of all-zero planes            | 1 byte run length |
//! | `0x01` | all-ones plane                    | — |
//! | `0x02` | single one bit                    | 1 byte bit position |
//! | `0x03` | two consecutive one bits          | 1 byte first position |
//! | `0x04` | raw plane                         | 4 bytes LE |
//!
//! BPC needs long chunks to amortize the base, so the paper uses it for
//! longer streams (update bins, vertex data) and delta byte-code for short
//! neighbor sets.
//!
//! The hot loops live in [`kernel`]: full 32-element chunks
//! take the batch path, where the delta/plane rotation is a 32×32 bit-matrix
//! transpose over word lanes instead of per-bit gathers, and partial chunks
//! take the scalar tail path. The original scalar implementation is
//! preserved in [`reference`](crate::reference) as the differential oracle.

use crate::{kernel, varint, Codec, DecodeError, ElemWidth, CHUNK_ELEMS};

/// Bit-Plane Compression codec over 32-element chunks.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, ElemWidth, bpc::BpcCodec};
///
/// // Slowly-varying data (e.g. sorted update destinations) compresses well.
/// let data: Vec<u64> = (0..256).map(|i| 10_000 + i / 3).collect();
/// let codec = BpcCodec::new(ElemWidth::W32);
/// assert!(codec.compressed_len(&data) < data.len() * 4 / 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BpcCodec {
    width: ElemWidth,
}

impl BpcCodec {
    /// Creates a BPC codec for elements of `width`.
    pub fn new(width: ElemWidth) -> Self {
        BpcCodec { width }
    }

    /// Element width this codec was configured with.
    pub fn width(&self) -> ElemWidth {
        self.width
    }

    fn write_base(&self, out: &mut Vec<u8>, base: u64) {
        match self.width {
            ElemWidth::W32 => out.extend_from_slice(&(base as u32).to_le_bytes()),
            ElemWidth::W64 => out.extend_from_slice(&base.to_le_bytes()),
        }
    }

    fn read_base(&self, input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
        let bytes = self.width.bytes();
        if *pos + bytes > input.len() {
            return Err(DecodeError::truncated("BPC base"));
        }
        let base = match self.width {
            ElemWidth::W32 => u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap()) as u64,
            ElemWidth::W64 => u64::from_le_bytes(input[*pos..*pos + 8].try_into().unwrap()),
        };
        *pos += bytes;
        Ok(base)
    }

    fn compress_chunk(&self, chunk: &[u64], out: &mut Vec<u8>) {
        debug_assert!(!chunk.is_empty() && chunk.len() <= CHUNK_ELEMS);
        out.push(chunk.len() as u8);
        self.write_base(out, chunk[0]);
        if chunk.len() < 2 {
            return;
        }
        let mut dbx = [0u32; kernel::MAX_PLANES];
        // Fast path for full chunks (transpose over word lanes), scalar
        // tail path for the final partial chunk.
        let np = if chunk.len() == CHUNK_ELEMS {
            kernel::bpc_dbx_planes_batch(self.width, chunk, &mut dbx)
        } else {
            kernel::bpc_dbx_planes_tail(self.width, chunk, &mut dbx)
        };
        kernel::bpc_encode_planes(&dbx[..np], out, (chunk.len() - 1) as u32);
    }

    fn decompress_chunk(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let n = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("BPC chunk length"))? as usize;
        *pos += 1;
        if n == 0 || n > CHUNK_ELEMS {
            return Err(DecodeError::new("BPC chunk length out of range"));
        }
        let base = self.read_base(input, pos)?;
        out.push(base);
        if n < 2 {
            return Ok(());
        }
        let nplanes = kernel::bpc_nplanes(self.width);
        let mut dbx = [0u32; kernel::MAX_PLANES];
        kernel::bpc_decode_planes(input, pos, &mut dbx[..nplanes], (n - 1) as u32)?;
        if n == CHUNK_ELEMS {
            kernel::bpc_reconstruct_batch(self.width, base, &dbx[..nplanes], out);
        } else {
            kernel::bpc_reconstruct_tail(self.width, base, &dbx[..nplanes], n, out);
        }
        Ok(())
    }
}

impl Codec for BpcCodec {
    fn name(&self) -> &'static str {
        match self.width {
            ElemWidth::W32 => "bpc32",
            ElemWidth::W64 => "bpc64",
        }
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        varint::write_u64(out, input.len() as u64);
        for chunk in input.chunks(CHUNK_ELEMS) {
            self.compress_chunk(chunk, out);
        }
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let total = varint::read_u64(input, pos)? as usize;
        // Header counts are untrusted input: cap the speculative reserve.
        out.reserve(total.min(input.len().saturating_mul(8)));
        let mut decoded = 0;
        while decoded < total {
            let before = out.len();
            self.decompress_chunk(input, pos, out)?;
            decoded += out.len() - before;
        }
        if decoded != total {
            return Err(DecodeError::new("BPC chunk sizes disagree with header"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(width: ElemWidth, data: &[u64]) {
        let codec = BpcCodec::new(width);
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        roundtrip(ElemWidth::W32, &[]);
        roundtrip(ElemWidth::W32, &[7]);
        roundtrip(ElemWidth::W64, &[u64::MAX]);
    }

    #[test]
    fn roundtrip_linear_sequences() {
        let data: Vec<u64> = (0..97).map(|i| 1000 + 3 * i).collect();
        roundtrip(ElemWidth::W32, &data);
        roundtrip(ElemWidth::W64, &data);
    }

    #[test]
    fn roundtrip_alternating() {
        let data: Vec<u64> = (0..64)
            .map(|i| if i % 2 == 0 { 5 } else { 4_000_000_000 })
            .collect();
        roundtrip(ElemWidth::W32, &data);
    }

    #[test]
    fn roundtrip_w64_extremes() {
        let data = [0u64, u64::MAX, 1, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
        roundtrip(ElemWidth::W64, &data);
    }

    #[test]
    fn roundtrip_partial_chunk_sizes() {
        for n in [1usize, 2, 31, 32, 33, 63, 64, 65] {
            let data: Vec<u64> = (0..n as u64).map(|i| i * 17 + 3).collect();
            roundtrip(ElemWidth::W32, &data);
        }
    }

    #[test]
    fn constant_data_compresses_dramatically() {
        let data = vec![123456u64; 256];
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        // 8 chunks x (len byte + 4-byte base + ~2 symbol bytes).
        assert!(size < 80, "size = {size}");
    }

    #[test]
    fn linear_data_beats_raw_substantially() {
        let data: Vec<u64> = (0..320).map(|i| 77 + i).collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        assert!(size * 4 < data.len() * 4, "size = {size}");
    }

    #[test]
    fn random_data_does_not_explode() {
        let data: Vec<u64> = (0..320)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 0xFFFF_FFFF)
            .collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let size = codec.compressed_len(&data);
        // Worst case: every plane raw = 33 * 5 bytes per 32-element chunk,
        // bounded by ~5.2 bytes/element.
        assert!(size < data.len() * 6, "size = {size}");
    }

    #[test]
    fn truncation_anywhere_is_an_error_or_caught() {
        let data: Vec<u64> = (0..40).map(|i| i * i).collect();
        let codec = BpcCodec::new(ElemWidth::W32);
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        for cut in 1..buf.len() {
            let mut out = Vec::new();
            assert!(
                codec.decompress(&buf[..cut], &mut out).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn width_accessor() {
        assert_eq!(BpcCodec::new(ElemWidth::W64).width(), ElemWidth::W64);
    }
}
