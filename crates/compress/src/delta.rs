//! Delta byte-code encoding (the paper's Sec. III-B "delta encoding").
//!
//! The paper's decompression unit "simply subtracts the previous and current
//! inputs, and emits an N-byte output if their delta (plus a small length
//! prefix) fits within N bytes" — the byte code of Ligra+. We realize the
//! length prefix as a control byte shared by a group of four deltas (two bits
//! per delta selecting 1, 2, 4, or 8 encoded bytes), and ZigZag-encode deltas
//! so descending sequences also compress.
//!
//! Delta encoding is the paper's preferred format for *short* streams such as
//! individual neighbor sets, because it has no per-chunk minimum size.

use crate::varint::{unzigzag, zigzag};
use crate::{varint, Codec, DecodeError};

/// Byte-size classes selectable by the two-bit length code.
const SIZE_CLASSES: [usize; 4] = [1, 2, 4, 8];

/// Delta byte-code codec.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, delta::DeltaCodec};
///
/// // A neighbor set with good value locality compresses to ~1 byte/element.
/// let neighbors: Vec<u64> = (0..64).map(|i| 1_000_000 + 3 * i).collect();
/// let codec = DeltaCodec::new();
/// let size = codec.compressed_len(&neighbors);
/// assert!(size < neighbors.len() * 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaCodec {
    _private: (),
}

impl DeltaCodec {
    /// Creates a delta byte-code codec.
    pub fn new() -> Self {
        DeltaCodec { _private: () }
    }

    fn size_class(delta: u64) -> u8 {
        if delta < 1 << 8 {
            0
        } else if delta < 1 << 16 {
            1
        } else if delta < 1 << 32 {
            2
        } else {
            3
        }
    }
}

impl Codec for DeltaCodec {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        varint::write_u64(out, input.len() as u64);
        let mut prev = 0u64;
        for group in input.chunks(4) {
            let deltas: Vec<u64> = group
                .iter()
                .map(|&v| {
                    let d = zigzag(v.wrapping_sub(prev) as i64);
                    prev = v;
                    d
                })
                .collect();
            let mut control = 0u8;
            for (i, &d) in deltas.iter().enumerate() {
                control |= Self::size_class(d) << (2 * i);
            }
            out.push(control);
            for &d in &deltas {
                let class = Self::size_class(d) as usize;
                out.extend_from_slice(&d.to_le_bytes()[..SIZE_CLASSES[class]]);
            }
        }
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        let n = varint::read_u64(input, pos)? as usize;
        // Header counts are untrusted input: cap the speculative reserve.
        out.reserve(n.min(input.len().saturating_mul(4)));
        let mut prev = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let control = *input
                .get(*pos)
                .ok_or_else(|| DecodeError::truncated("delta control byte"))?;
            *pos += 1;
            let in_group = remaining.min(4);
            for i in 0..in_group {
                let class = ((control >> (2 * i)) & 0b11) as usize;
                let len = SIZE_CLASSES[class];
                if *pos + len > input.len() {
                    return Err(DecodeError::truncated("delta payload"));
                }
                let mut bytes = [0u8; 8];
                bytes[..len].copy_from_slice(&input[*pos..*pos + len]);
                *pos += len;
                let delta = unzigzag(u64::from_le_bytes(bytes));
                prev = prev.wrapping_add(delta as u64);
                out.push(prev);
            }
            remaining -= in_group;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64]) {
        let codec = DeltaCodec::new();
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single() {
        roundtrip(&[42]);
        roundtrip(&[u64::MAX]);
    }

    #[test]
    fn roundtrip_ascending_and_descending() {
        let asc: Vec<u64> = (0..100).map(|i| i * 5 + 7).collect();
        roundtrip(&asc);
        let desc: Vec<u64> = (0..100).rev().map(|i| i * 5 + 7).collect();
        roundtrip(&desc);
    }

    #[test]
    fn roundtrip_non_multiple_of_group() {
        for n in [1usize, 2, 3, 5, 6, 7, 9] {
            let data: Vec<u64> = (0..n as u64).map(|i| i * i).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn roundtrip_extreme_jumps() {
        roundtrip(&[0, u64::MAX, 0, 1 << 63, 3, u64::MAX - 1]);
    }

    #[test]
    fn local_values_compress_to_about_one_byte_each() {
        // Neighbor ids in a reordered graph cluster around the source id.
        let data: Vec<u64> = (0..128).map(|i| 5_000_000 + (i % 40)).collect();
        let codec = DeltaCodec::new();
        let size = codec.compressed_len(&data);
        // 1 data byte per element + 1 control byte per 4, plus the header
        // and the wide first delta.
        assert!(size <= data.len() + data.len() / 4 + 16, "size={size}");
    }

    #[test]
    fn scattered_values_do_not_explode() {
        // Worst case: random jumps need 8 bytes + prefix, but never more
        // than 8 + 1/4 bytes/element.
        let data: Vec<u64> = (0..100)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let codec = DeltaCodec::new();
        let size = codec.compressed_len(&data);
        assert!(size <= data.len() * 9 + 4);
    }

    #[test]
    fn truncated_stream_is_error() {
        let codec = DeltaCodec::new();
        let mut buf = Vec::new();
        codec.compress(&[1, 2, 3, 4, 5], &mut buf);
        for cut in 1..buf.len() {
            let mut out = Vec::new();
            assert!(
                codec.decompress(&buf[..cut], &mut out).is_err(),
                "cut={cut} should fail"
            );
        }
    }
}
