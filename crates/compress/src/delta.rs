//! Delta byte-code encoding (the paper's Sec. III-B "delta encoding").
//!
//! The paper's decompression unit "simply subtracts the previous and current
//! inputs, and emits an N-byte output if their delta (plus a small length
//! prefix) fits within N bytes" — the byte code of Ligra+. We realize the
//! length prefix as a control byte shared by a group of four deltas (two bits
//! per delta selecting 1, 2, 4, or 8 encoded bytes), and ZigZag-encode deltas
//! so descending sequences also compress.
//!
//! Delta encoding is the paper's preferred format for *short* streams such as
//! individual neighbor sets, because it has no per-chunk minimum size.
//!
//! The hot loops live in [`kernel`]: encode runs over
//! 32-element latent batches with table-driven size classification, decode
//! resolves whole four-delta groups from one control-byte lookup. The
//! original scalar implementation is preserved in
//! [`reference`](crate::reference) as the differential oracle.

use crate::{kernel, Codec, DecodeError};

/// Delta byte-code codec.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, delta::DeltaCodec};
///
/// // A neighbor set with good value locality compresses to ~1 byte/element.
/// let neighbors: Vec<u64> = (0..64).map(|i| 1_000_000 + 3 * i).collect();
/// let codec = DeltaCodec::new();
/// let size = codec.compressed_len(&neighbors);
/// assert!(size < neighbors.len() * 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaCodec {
    _private: (),
}

impl DeltaCodec {
    /// Creates a delta byte-code codec.
    pub fn new() -> Self {
        DeltaCodec { _private: () }
    }
}

impl Codec for DeltaCodec {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        kernel::delta_compress(input, out);
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        kernel::delta_decode_frame(input, pos, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64]) {
        let codec = DeltaCodec::new();
        let mut buf = Vec::new();
        codec.compress(data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single() {
        roundtrip(&[42]);
        roundtrip(&[u64::MAX]);
    }

    #[test]
    fn roundtrip_ascending_and_descending() {
        let asc: Vec<u64> = (0..100).map(|i| i * 5 + 7).collect();
        roundtrip(&asc);
        let desc: Vec<u64> = (0..100).rev().map(|i| i * 5 + 7).collect();
        roundtrip(&desc);
    }

    #[test]
    fn roundtrip_non_multiple_of_group() {
        for n in [1usize, 2, 3, 5, 6, 7, 9] {
            let data: Vec<u64> = (0..n as u64).map(|i| i * i).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn roundtrip_extreme_jumps() {
        roundtrip(&[0, u64::MAX, 0, 1 << 63, 3, u64::MAX - 1]);
    }

    #[test]
    fn local_values_compress_to_about_one_byte_each() {
        // Neighbor ids in a reordered graph cluster around the source id.
        let data: Vec<u64> = (0..128).map(|i| 5_000_000 + (i % 40)).collect();
        let codec = DeltaCodec::new();
        let size = codec.compressed_len(&data);
        // 1 data byte per element + 1 control byte per 4, plus the header
        // and the wide first delta.
        assert!(size <= data.len() + data.len() / 4 + 16, "size={size}");
    }

    #[test]
    fn scattered_values_do_not_explode() {
        // Worst case: random jumps need 8 bytes + prefix, but never more
        // than 8 + 1/4 bytes/element.
        let data: Vec<u64> = (0..100)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let codec = DeltaCodec::new();
        let size = codec.compressed_len(&data);
        assert!(size <= data.len() * 9 + 4);
    }

    #[test]
    fn truncated_stream_is_error() {
        let codec = DeltaCodec::new();
        let mut buf = Vec::new();
        codec.compress(&[1, 2, 3, 4, 5], &mut buf);
        for cut in 1..buf.len() {
            let mut out = Vec::new();
            assert!(
                codec.decompress(&buf[..cut], &mut out).is_err(),
                "cut={cut} should fail"
            );
        }
    }
}
