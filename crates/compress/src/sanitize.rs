//! Byte-conservation checking for codecs: the compression half of
//! SimSanitizer.
//!
//! A codec is *conservative* when every element that enters `compress`
//! leaves `decompress` again (identity, or per-chunk multiset equality for
//! the order-insensitive optimization of Sec. III-C) and when the framed
//! encoding accounts for every byte: decoding the frames of a region
//! consumes exactly the bytes the compressor claims to have written,
//! nothing more, nothing less. These are the dynamic invariants behind
//! SimSanitizer's S008 (round-trip identity) and S009 (framed-length
//! accounting) checks; the sanitizer layer in `spzip-sim` turns the
//! [`ConservationError`] values returned here into rendered diagnostics.
//!
//! This module is always compiled (it has no hot-path hooks); the
//! `sanitize` feature only controls whether the simulator invokes it.

use crate::{Codec, DecodeError};
use std::fmt;

/// A violated conservation invariant, found by [`check_region`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConservationError {
    /// A frame failed to decode (S009: the framed bytes are not
    /// self-describing at the claimed length).
    Decode {
        /// Byte offset of the frame that failed.
        at: usize,
        /// The decoder's error.
        err: DecodeError,
    },
    /// Decoding the frames consumed a different number of bytes than the
    /// region claims to hold (S009).
    Length {
        /// Bytes the region claims (the framed length).
        framed: usize,
        /// Bytes the decoder actually consumed.
        consumed: usize,
    },
    /// The decoded stream has the wrong number of elements (S008).
    Count {
        /// Elements that entered the compressor.
        expected: usize,
        /// Elements that came back out.
        got: usize,
    },
    /// A decoded element differs from its source (S008). For
    /// order-insensitive chunks the comparison is between sorted copies,
    /// so `index` refers to the sorted order.
    Element {
        /// Index of the first differing element.
        index: usize,
        /// The element that entered the compressor.
        expected: u64,
        /// The element that came back out.
        got: u64,
    },
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConservationError::Decode { at, err } => {
                write!(f, "frame at byte {at} failed to decode: {err}")
            }
            ConservationError::Length { framed, consumed } => write!(
                f,
                "framed length claims {framed} byte(s) but decoding consumed {consumed}"
            ),
            ConservationError::Count { expected, got } => {
                write!(f, "{expected} element(s) compressed but {got} decompressed")
            }
            ConservationError::Element {
                index,
                expected,
                got,
            } => write!(
                f,
                "element {index} went in as {expected:#x} and came out as {got:#x}"
            ),
        }
    }
}

impl std::error::Error for ConservationError {}

/// Checks byte conservation of `region[..framed]` against `source`.
///
/// Decodes the concatenated frames in `region[..framed]` and verifies
/// that (a) decoding consumes exactly `framed` bytes and (b) the decoded
/// elements equal `source` — elementwise, or as sorted sequences when
/// `order_insensitive` is set (chunk sorting reorders elements but must
/// still conserve the multiset).
///
/// # Errors
///
/// Returns the first [`ConservationError`] encountered.
pub fn check_region(
    codec: &dyn Codec,
    region: &[u8],
    framed: usize,
    source: &[u64],
    order_insensitive: bool,
) -> Result<(), ConservationError> {
    let framed = framed.min(region.len());
    let bytes = &region[..framed];
    let mut decoded = Vec::with_capacity(source.len());
    let mut pos = 0;
    while pos < framed {
        let at = pos;
        codec
            .decode_frame(bytes, &mut pos, &mut decoded)
            .map_err(|err| ConservationError::Decode { at, err })?;
    }
    if pos != framed {
        return Err(ConservationError::Length {
            framed,
            consumed: pos,
        });
    }
    if decoded.len() != source.len() {
        return Err(ConservationError::Count {
            expected: source.len(),
            got: decoded.len(),
        });
    }
    let (expected, got) = if order_insensitive {
        let mut e = source.to_vec();
        let mut g = decoded;
        e.sort_unstable();
        g.sort_unstable();
        (e, g)
    } else {
        (source.to_vec(), decoded)
    };
    for (index, (&e, &g)) in expected.iter().zip(got.iter()).enumerate() {
        if e != g {
            return Err(ConservationError::Element {
                index,
                expected: e,
                got: g,
            });
        }
    }
    Ok(())
}

/// Compresses `input` with `codec` and checks the result conserves it —
/// the self-test form of [`check_region`].
///
/// # Errors
///
/// Returns the [`ConservationError`] of the round trip, if any.
pub fn check_roundtrip(
    codec: &dyn Codec,
    input: &[u64],
    order_insensitive: bool,
) -> Result<(), ConservationError> {
    let mut buf = Vec::new();
    codec.compress(input, &mut buf);
    check_region(codec, &buf, buf.len(), input, order_insensitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorted::SortedChunks;
    use crate::{CodecKind, ElemWidth, IdentityCodec};

    #[test]
    fn every_codec_roundtrip_conserves() {
        let data: Vec<u64> = (0..97).map(|i| (i * 131 + 7) % 4096).collect();
        for kind in CodecKind::all() {
            let codec = kind.build();
            check_roundtrip(codec.as_ref(), &data, false).unwrap();
        }
    }

    #[test]
    fn sorted_chunks_need_order_insensitive_compare() {
        let codec = SortedChunks::new(crate::delta::DeltaCodec::new());
        let data: Vec<u64> = (0..64).map(|i| 4096 - i * 3).collect();
        // The multiset survives even though the order does not.
        check_roundtrip(&codec, &data, true).unwrap();
        assert!(matches!(
            check_roundtrip(&codec, &data, false),
            Err(ConservationError::Element { .. })
        ));
    }

    #[test]
    fn concatenated_frames_check_as_one_region() {
        let codec = IdentityCodec::new(ElemWidth::W32);
        let mut region = Vec::new();
        codec.compress(&[1, 2, 3], &mut region);
        codec.compress(&[4, 5], &mut region);
        check_region(&codec, &region, region.len(), &[1, 2, 3, 4, 5], false).unwrap();
    }

    #[test]
    fn truncated_region_is_a_length_or_decode_error() {
        let codec = IdentityCodec::new(ElemWidth::W64);
        let mut region = Vec::new();
        codec.compress(&[9, 8, 7], &mut region);
        let err = check_region(&codec, &region, region.len() - 1, &[9, 8, 7], false).unwrap_err();
        assert!(
            matches!(
                err,
                ConservationError::Decode { .. } | ConservationError::Length { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn corrupted_element_is_reported_with_index() {
        let codec = IdentityCodec::new(ElemWidth::W64);
        let mut region = Vec::new();
        codec.compress(&[10, 20, 30], &mut region);
        let n = region.len();
        region[n - 1] ^= 0x40; // flip a bit in the last element
        let err = check_region(&codec, &region, n, &[10, 20, 30], false).unwrap_err();
        match err {
            ConservationError::Element {
                index, expected, ..
            } => {
                assert_eq!((index, expected), (2, 30));
            }
            other => panic!("expected element mismatch, got {other}"),
        }
    }

    #[test]
    fn errors_render_human_readable() {
        let e = ConservationError::Length {
            framed: 10,
            consumed: 8,
        };
        assert!(e.to_string().contains("10"));
        let e = ConservationError::Count {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("4 element(s)"));
    }
}
