//! Compression-ratio and throughput accounting shared by the engines,
//! benchmarks, and figure renderers.
//!
//! [`CodecPerfRecord`] is the one schema behind `BENCH_codecs.json`: each
//! record carries ratio *and* encode/decode throughput side by side, so the
//! bench harness that writes the trajectory and the tools that read it
//! cannot drift apart.

use std::fmt;

/// Accumulates uncompressed/compressed byte totals and reports the ratio.
///
/// # Examples
///
/// ```
/// use spzip_compress::stats::CompressionStats;
///
/// let mut stats = CompressionStats::new();
/// stats.record(1000, 400);
/// stats.record(1000, 600);
/// assert_eq!(stats.ratio(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    uncompressed_bytes: u64,
    compressed_bytes: u64,
    chunks: u64,
}

impl CompressionStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one compressed chunk.
    pub fn record(&mut self, uncompressed_bytes: u64, compressed_bytes: u64) {
        self.uncompressed_bytes += uncompressed_bytes;
        self.compressed_bytes += compressed_bytes;
        self.chunks += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.chunks += other.chunks;
    }

    /// Total uncompressed bytes recorded.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.uncompressed_bytes
    }

    /// Total compressed bytes recorded.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Number of chunks recorded.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Compression ratio (uncompressed / compressed); 1.0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}x over {} chunks)",
            self.uncompressed_bytes,
            self.compressed_bytes,
            self.ratio(),
            self.chunks
        )
    }
}

/// Accumulates bytes moved and time spent, reporting throughput in GB/s.
///
/// # Examples
///
/// ```
/// use spzip_compress::stats::ThroughputStats;
///
/// let mut t = ThroughputStats::new();
/// t.record(4_000, 1_000); // 4000 bytes in 1000 ns = 4 GB/s
/// assert_eq!(t.gbps(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThroughputStats {
    bytes: u64,
    nanos: u128,
}

impl ThroughputStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` processed in `nanos` nanoseconds.
    pub fn record(&mut self, bytes: u64, nanos: u128) {
        self.bytes += bytes;
        self.nanos += nanos;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total nanoseconds recorded.
    pub fn nanos(&self) -> u128 {
        self.nanos
    }

    /// Throughput in GB/s (bytes per nanosecond); 0.0 when nothing has
    /// been timed.
    pub fn gbps(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.bytes as f64 / self.nanos as f64
        }
    }
}

/// One row of the codec perf trajectory: a codec × implementation × stream
/// cell with its compression ratio and encode/decode throughput.
///
/// Serialized as one JSON object per record inside `BENCH_codecs.json`;
/// [`CodecPerfRecord::to_json`] and [`CodecPerfRecord::from_json`] are
/// inverses so the writer (bench harness) and readers (CI gate, figure
/// renderers) share one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecPerfRecord {
    /// Codec name (e.g. `"delta"`, `"bpc32"`).
    pub codec: String,
    /// Implementation arm: `"kernel"` or `"reference"`.
    pub implementation: String,
    /// Builtin stream the measurement ran on.
    pub stream: String,
    /// Compression ratio (uncompressed / compressed).
    pub ratio: f64,
    /// Encode throughput in GB/s of uncompressed input.
    pub encode_gbps: f64,
    /// Decode throughput in GB/s of uncompressed output.
    pub decode_gbps: f64,
}

impl CodecPerfRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"codec\":\"{}\",\"implementation\":\"{}\",\"stream\":\"{}\",\
             \"ratio\":{:.4},\"encode_gbps\":{:.4},\"decode_gbps\":{:.4}}}",
            self.codec,
            self.implementation,
            self.stream,
            self.ratio,
            self.encode_gbps,
            self.decode_gbps
        )
    }

    /// Parses a record from a JSON object as written by
    /// [`CodecPerfRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field. The
    /// parser accepts the subset of JSON this crate writes (no escapes
    /// inside strings), which is all the trajectory file ever contains.
    pub fn from_json(obj: &str) -> Result<CodecPerfRecord, String> {
        Ok(CodecPerfRecord {
            codec: json_str_field(obj, "codec")?,
            implementation: json_str_field(obj, "implementation")?,
            stream: json_str_field(obj, "stream")?,
            ratio: json_num_field(obj, "ratio")?,
            encode_gbps: json_num_field(obj, "encode_gbps")?,
            decode_gbps: json_num_field(obj, "decode_gbps")?,
        })
    }
}

/// Extracts a string field from a flat JSON object (writer-subset JSON:
/// no escapes, no nested objects inside strings).
fn json_str_field(obj: &str, key: &str) -> Result<String, String> {
    let rest = json_field(obj, key)?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("field {key:?} is not a string"))?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated string in field {key:?}"))?;
    let value = &rest[..end];
    if value.contains('\\') {
        return Err(format!("field {key:?} uses unsupported escapes"));
    }
    Ok(value.to_string())
}

/// Extracts a numeric field from a flat JSON object.
fn json_num_field(obj: &str, key: &str) -> Result<f64, String> {
    let rest = json_field(obj, key)?;
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated value in field {key:?}"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("field {key:?}: {e}"))
}

/// Returns the text immediately after `"key":`.
fn json_field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    Ok(obj[start + pat.len()..].trim_start())
}

/// Geometric mean of a slice of positive ratios; 1.0 for an empty slice.
///
/// Used for the paper's "gmean" speedup summaries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice. Used for traffic summaries
/// ("averages are geometric means for speedups and arithmetic means for
/// traffic").
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_ratio_is_one() {
        assert_eq!(CompressionStats::new().ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CompressionStats::new();
        a.record(100, 50);
        let mut b = CompressionStats::new();
        b.record(300, 150);
        a.merge(&b);
        assert_eq!(a.ratio(), 2.0);
        assert_eq!(a.chunks(), 2);
        assert_eq!(a.uncompressed_bytes(), 400);
        assert_eq!(a.compressed_bytes(), 200);
    }

    #[test]
    fn display_mentions_ratio() {
        let mut s = CompressionStats::new();
        s.record(200, 100);
        assert!(s.to_string().contains("2.00x"));
    }

    #[test]
    fn throughput_gbps() {
        assert_eq!(ThroughputStats::new().gbps(), 0.0);
        let mut t = ThroughputStats::new();
        t.record(1_000, 500);
        t.record(1_000, 500);
        assert_eq!(t.bytes(), 2_000);
        assert_eq!(t.nanos(), 1_000);
        assert_eq!(t.gbps(), 2.0);
    }

    #[test]
    fn perf_record_json_roundtrip() {
        let rec = CodecPerfRecord {
            codec: "delta".into(),
            implementation: "kernel".into(),
            stream: "clustered_ids".into(),
            ratio: 7.5,
            encode_gbps: 3.25,
            decode_gbps: 12.125,
        };
        let json = rec.to_json();
        let back = CodecPerfRecord::from_json(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn perf_record_rejects_malformed() {
        assert!(CodecPerfRecord::from_json("{}").is_err());
        assert!(CodecPerfRecord::from_json("{\"codec\":\"delta\"}").is_err());
        let bad_num = "{\"codec\":\"d\",\"implementation\":\"k\",\"stream\":\"s\",\
                       \"ratio\":x,\"encode_gbps\":1,\"decode_gbps\":1}";
        assert!(CodecPerfRecord::from_json(bad_num).is_err());
    }

    #[test]
    fn gmean_and_amean() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
