//! Compression-ratio accounting shared by the engines and benchmarks.

use std::fmt;

/// Accumulates uncompressed/compressed byte totals and reports the ratio.
///
/// # Examples
///
/// ```
/// use spzip_compress::stats::CompressionStats;
///
/// let mut stats = CompressionStats::new();
/// stats.record(1000, 400);
/// stats.record(1000, 600);
/// assert_eq!(stats.ratio(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    uncompressed_bytes: u64,
    compressed_bytes: u64,
    chunks: u64,
}

impl CompressionStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one compressed chunk.
    pub fn record(&mut self, uncompressed_bytes: u64, compressed_bytes: u64) {
        self.uncompressed_bytes += uncompressed_bytes;
        self.compressed_bytes += compressed_bytes;
        self.chunks += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.chunks += other.chunks;
    }

    /// Total uncompressed bytes recorded.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.uncompressed_bytes
    }

    /// Total compressed bytes recorded.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Number of chunks recorded.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Compression ratio (uncompressed / compressed); 1.0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}x over {} chunks)",
            self.uncompressed_bytes,
            self.compressed_bytes,
            self.ratio(),
            self.chunks
        )
    }
}

/// Geometric mean of a slice of positive ratios; 1.0 for an empty slice.
///
/// Used for the paper's "gmean" speedup summaries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice. Used for traffic summaries
/// ("averages are geometric means for speedups and arithmetic means for
/// traffic").
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_ratio_is_one() {
        assert_eq!(CompressionStats::new().ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CompressionStats::new();
        a.record(100, 50);
        let mut b = CompressionStats::new();
        b.record(300, 150);
        a.merge(&b);
        assert_eq!(a.ratio(), 2.0);
        assert_eq!(a.chunks(), 2);
        assert_eq!(a.uncompressed_bytes(), 400);
        assert_eq!(a.compressed_bytes(), 200);
    }

    #[test]
    fn display_mentions_ratio() {
        let mut s = CompressionStats::new();
        s.record(200, 100);
        assert!(s.to_string().contains("2.00x"));
    }

    #[test]
    fn gmean_and_amean() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
