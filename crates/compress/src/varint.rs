//! LEB128 variable-length integers, used for framing headers and run lengths.

use crate::DecodeError;

/// Appends `value` to `out` as an unsigned LEB128 varint.
///
/// # Examples
///
/// ```
/// let mut buf = Vec::new();
/// spzip_compress::varint::write_u64(&mut buf, 300);
/// assert_eq!(buf, [0xAC, 0x02]);
/// ```
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `input` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input or a varint longer than the 10
/// bytes a `u64` can need.
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::new("varint longer than 64 bits"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// ZigZag-encodes a signed value so small magnitudes become small unsigned
/// values regardless of sign.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_overlong_is_error() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }
}
