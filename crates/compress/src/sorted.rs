//! The paper's order-insensitive-data optimization (Sec. III-C).
//!
//! Many compressed streams are semantically *sets*: update bins hold sets of
//! `{dst, contrib}` tuples and the frontier holds the set of active vertices,
//! so reordering elements does not affect semantics. SpZip optionally sorts
//! each 32-element chunk before compression, placing similar values nearby
//! and improving the ratios of both delta encoding and BPC. The paper
//! measures this lifting UB's bin compression ratio from 1.26x to 1.55x on
//! Connected Components.

use crate::{Codec, DecodeError, Scratch, CHUNK_ELEMS};

/// Wraps a codec, sorting each [`CHUNK_ELEMS`]-element chunk before
/// compression.
///
/// Round-trip guarantee: decompression yields each chunk's elements in sorted
/// order — the same *multiset* per chunk, not the same sequence. Only apply
/// to order-insensitive data.
///
/// # Examples
///
/// ```
/// use spzip_compress::{Codec, delta::DeltaCodec, sorted::SortedChunks};
///
/// let scattered: Vec<u64> = (0..32).map(|i| (i * 13) % 32 * 50 + 1000).collect();
/// let plain = DeltaCodec::new();
/// let sorted = SortedChunks::new(DeltaCodec::new());
/// assert!(sorted.compressed_len(&scattered) < plain.compressed_len(&scattered));
/// ```
#[derive(Debug, Clone)]
pub struct SortedChunks<C> {
    inner: C,
}

impl<C: Codec> SortedChunks<C> {
    /// Wraps `inner` with per-chunk sorting.
    pub fn new(inner: C) -> Self {
        SortedChunks { inner }
    }

    /// Returns the wrapped codec.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Codec> Codec for SortedChunks<C> {
    fn name(&self) -> &'static str {
        "sorted"
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        let mut scratch = Scratch::new();
        self.compress_with(input, out, &mut scratch);
    }

    fn compress_with(&self, input: &[u64], out: &mut Vec<u8>, scratch: &mut Scratch) {
        // The sorted copy is staged in the caller's scratch so per-chunk
        // call sites don't allocate; the buffer only ever grows.
        let buf = &mut scratch.values;
        buf.clear();
        buf.reserve(input.len());
        for chunk in input.chunks(CHUNK_ELEMS) {
            let start = buf.len();
            buf.extend_from_slice(chunk);
            buf[start..].sort_unstable();
        }
        self.inner.compress(buf, out);
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        self.inner.decode_frame(input, pos, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpc::BpcCodec;
    use crate::delta::DeltaCodec;
    use crate::ElemWidth;

    #[test]
    fn roundtrip_is_per_chunk_multiset() {
        let data: Vec<u64> = (0..100).map(|i| (i * 37) % 100).collect();
        let codec = SortedChunks::new(DeltaCodec::new());
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out.len(), data.len());
        for (got, want) in out.chunks(CHUNK_ELEMS).zip(data.chunks(CHUNK_ELEMS)) {
            let mut want = want.to_vec();
            want.sort_unstable();
            assert_eq!(got, &want[..]);
        }
    }

    #[test]
    fn sorting_improves_bpc_on_scattered_sets() {
        // Simulates an update bin: destinations within a cache-fitting slice,
        // arriving in scattered order.
        let data: Vec<u64> = (0..512)
            .map(|i| {
                // Hash-scattered destinations: a multiply alone is linear in
                // i (constant stride that plain BPC exploits), so mix with
                // xorshift rounds.
                let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 29;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 32;
                (h % 4096) + (1 << 20)
            })
            .collect();
        let plain = BpcCodec::new(ElemWidth::W32);
        let sorted = SortedChunks::new(BpcCodec::new(ElemWidth::W32));
        assert!(sorted.compressed_len(&data) < plain.compressed_len(&data));
    }

    #[test]
    fn already_sorted_data_is_unchanged() {
        let data: Vec<u64> = (0..64).collect();
        let codec = SortedChunks::new(DeltaCodec::new());
        let mut buf = Vec::new();
        codec.compress(&data, &mut buf);
        let mut out = Vec::new();
        codec.decompress(&buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn into_inner_returns_codec() {
        let codec = SortedChunks::new(DeltaCodec::new());
        let _inner: DeltaCodec = codec.into_inner();
    }
}
