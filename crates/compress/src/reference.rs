//! Retained scalar codec implementations: the differential oracle.
//!
//! When the hot encode/decode paths moved onto the batch kernels in
//! [`crate::kernel`], the original byte-at-a-time implementations
//! moved here *verbatim* instead of being deleted. They serve three roles:
//!
//! 1. **Differential oracle** — the property tests in
//!    `tests/differential.rs` assert that for every codec and every input,
//!    the kernel paths produce byte-identical frames and element-identical
//!    decodes. Any kernel bug that changes the wire format fails loudly
//!    against this module.
//! 2. **Throughput baseline** — the `codec-bench` harness measures the
//!    kernel paths *relative to* these implementations on the same machine,
//!    which makes the `BENCH_codecs.json` speedup trajectory
//!    machine-normalized.
//! 3. **Tail paths** — partial chunks (fewer elements than a full batch)
//!    decode through the same group logic these functions use, so the
//!    scalar code here is also the specification of the tail behaviour.
//!
//! Nothing in this module may call into [`crate::kernel`]: the two
//! implementations must stay independent for the differential tests to
//! mean anything. Do not "optimize" this module — its value is that it is
//! the original, obviously-correct code.

use crate::varint::{unzigzag, zigzag};
use crate::{varint, Codec, CodecKind, DecodeError, ElemWidth, CHUNK_ELEMS};

/// Byte-size classes selectable by the delta codec's two-bit length code.
const SIZE_CLASSES: [usize; 4] = [1, 2, 4, 8];

const OP_ZERO_RUN: u8 = 0x00;
const OP_ALL_ONES: u8 = 0x01;
const OP_SINGLE_ONE: u8 = 0x02;
const OP_TWO_CONSEC: u8 = 0x03;
const OP_RAW: u8 = 0x04;

fn delta_size_class(delta: u64) -> u8 {
    if delta < 1 << 8 {
        0
    } else if delta < 1 << 16 {
        1
    } else if delta < 1 << 32 {
        2
    } else {
        3
    }
}

/// Scalar delta byte-code encoder (the original `DeltaCodec::compress`).
pub fn delta_compress(input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    let mut prev = 0u64;
    for group in input.chunks(4) {
        let deltas: Vec<u64> = group
            .iter()
            .map(|&v| {
                let d = zigzag(v.wrapping_sub(prev) as i64);
                prev = v;
                d
            })
            .collect();
        let mut control = 0u8;
        for (i, &d) in deltas.iter().enumerate() {
            control |= delta_size_class(d) << (2 * i);
        }
        out.push(control);
        for &d in &deltas {
            let class = delta_size_class(d) as usize;
            out.extend_from_slice(&d.to_le_bytes()[..SIZE_CLASSES[class]]);
        }
    }
}

/// Scalar delta byte-code frame decoder (the original
/// `DeltaCodec::decode_frame`).
///
/// # Errors
///
/// Returns [`DecodeError`] on a malformed frame.
pub fn delta_decode_frame(
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let n = varint::read_u64(input, pos)? as usize;
    // Header counts are untrusted input: cap the speculative reserve.
    out.reserve(n.min(input.len().saturating_mul(4)));
    let mut prev = 0u64;
    let mut remaining = n;
    while remaining > 0 {
        let control = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("delta control byte"))?;
        *pos += 1;
        let in_group = remaining.min(4);
        for i in 0..in_group {
            let class = ((control >> (2 * i)) & 0b11) as usize;
            let len = SIZE_CLASSES[class];
            if *pos + len > input.len() {
                return Err(DecodeError::truncated("delta payload"));
            }
            let mut bytes = [0u8; 8];
            bytes[..len].copy_from_slice(&input[*pos..*pos + len]);
            *pos += len;
            let delta = unzigzag(u64::from_le_bytes(bytes));
            prev = prev.wrapping_add(delta as u64);
            out.push(prev);
        }
        remaining -= in_group;
    }
    Ok(())
}

fn bpc_planes(width: ElemWidth) -> u32 {
    width.bits() + 1
}

fn bpc_write_base(width: ElemWidth, out: &mut Vec<u8>, base: u64) {
    match width {
        ElemWidth::W32 => out.extend_from_slice(&(base as u32).to_le_bytes()),
        ElemWidth::W64 => out.extend_from_slice(&base.to_le_bytes()),
    }
}

fn bpc_read_base(width: ElemWidth, input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let bytes = width.bytes();
    if *pos + bytes > input.len() {
        return Err(DecodeError::truncated("BPC base"));
    }
    let base = match width {
        ElemWidth::W32 => u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap()) as u64,
        ElemWidth::W64 => u64::from_le_bytes(input[*pos..*pos + 8].try_into().unwrap()),
    };
    *pos += bytes;
    Ok(base)
}

/// Computes the DBX planes of a chunk via the original per-bit loops.
/// `chunk.len()` must be >= 2.
fn bpc_dbx_planes(width: ElemWidth, chunk: &[u64]) -> Vec<u32> {
    let nbits = bpc_planes(width);
    let ndeltas = chunk.len() - 1;
    // (width+1)-bit two's-complement deltas, kept in u128 for W64.
    let modulus_mask: u128 = if nbits >= 128 {
        u128::MAX
    } else {
        (1u128 << nbits) - 1
    };
    let deltas: Vec<u128> = chunk
        .windows(2)
        .map(|w| ((w[1] as i128 - w[0] as i128) as u128) & modulus_mask)
        .collect();
    // DBP: plane p = bit p of each delta.
    let mut dbp = vec![0u32; nbits as usize];
    for (i, &d) in deltas.iter().enumerate() {
        for (p, plane) in dbp.iter_mut().enumerate() {
            *plane |= (((d >> p) & 1) as u32) << i;
        }
    }
    // DBX: XOR with the plane above; top plane kept as-is.
    let mut dbx = vec![0u32; nbits as usize];
    dbx[nbits as usize - 1] = dbp[nbits as usize - 1];
    for p in 0..nbits as usize - 1 {
        dbx[p] = dbp[p] ^ dbp[p + 1];
    }
    debug_assert!(ndeltas <= 31);
    dbx
}

fn bpc_encode_planes(planes: &[u32], out: &mut Vec<u8>, plane_bits: u32) {
    let all_ones: u32 = if plane_bits >= 32 {
        u32::MAX
    } else {
        (1 << plane_bits) - 1
    };
    let mut p = planes.len();
    // Encode from the top plane down: correlated data zeroes high planes.
    while p > 0 {
        p -= 1;
        let plane = planes[p];
        if plane == 0 {
            // Greedily absorb a run of zero planes.
            let mut run = 1u32;
            while p > 0 && planes[p - 1] == 0 && run < 255 {
                p -= 1;
                run += 1;
            }
            out.push(OP_ZERO_RUN);
            out.push(run as u8);
        } else if plane == all_ones {
            out.push(OP_ALL_ONES);
        } else if plane.count_ones() == 1 {
            out.push(OP_SINGLE_ONE);
            out.push(plane.trailing_zeros() as u8);
        } else if plane.count_ones() == 2 && (plane >> plane.trailing_zeros()) == 0b11 {
            out.push(OP_TWO_CONSEC);
            out.push(plane.trailing_zeros() as u8);
        } else {
            out.push(OP_RAW);
            out.extend_from_slice(&plane.to_le_bytes());
        }
    }
}

fn bpc_decode_planes(
    input: &[u8],
    pos: &mut usize,
    nplanes: usize,
    plane_bits: u32,
) -> Result<Vec<u32>, DecodeError> {
    let all_ones: u32 = if plane_bits >= 32 {
        u32::MAX
    } else {
        (1 << plane_bits) - 1
    };
    let mut planes = vec![0u32; nplanes];
    let mut p = nplanes;
    while p > 0 {
        let op = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::truncated("BPC opcode"))?;
        *pos += 1;
        match op {
            OP_ZERO_RUN => {
                let run = *input
                    .get(*pos)
                    .ok_or_else(|| DecodeError::truncated("BPC zero-run length"))?
                    as usize;
                *pos += 1;
                if run == 0 || run > p {
                    return Err(DecodeError::new("BPC zero-run out of range"));
                }
                for _ in 0..run {
                    p -= 1;
                    planes[p] = 0;
                }
            }
            OP_ALL_ONES => {
                p -= 1;
                planes[p] = all_ones;
            }
            OP_SINGLE_ONE | OP_TWO_CONSEC => {
                let bit = *input
                    .get(*pos)
                    .ok_or_else(|| DecodeError::truncated("BPC bit position"))?
                    as u32;
                *pos += 1;
                if bit >= plane_bits || (op == OP_TWO_CONSEC && bit + 1 >= plane_bits) {
                    return Err(DecodeError::new("BPC bit position out of range"));
                }
                p -= 1;
                planes[p] = if op == OP_SINGLE_ONE {
                    1 << bit
                } else {
                    0b11 << bit
                };
            }
            OP_RAW => {
                if *pos + 4 > input.len() {
                    return Err(DecodeError::truncated("BPC raw plane"));
                }
                p -= 1;
                planes[p] = u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap());
                *pos += 4;
            }
            other => {
                return Err(DecodeError::new(format!("unknown BPC opcode {other:#x}")));
            }
        }
    }
    Ok(planes)
}

fn bpc_compress_chunk(width: ElemWidth, chunk: &[u64], out: &mut Vec<u8>) {
    debug_assert!(!chunk.is_empty() && chunk.len() <= CHUNK_ELEMS);
    out.push(chunk.len() as u8);
    bpc_write_base(width, out, chunk[0]);
    if chunk.len() < 2 {
        return;
    }
    let dbx = bpc_dbx_planes(width, chunk);
    bpc_encode_planes(&dbx, out, (chunk.len() - 1) as u32);
}

fn bpc_decompress_chunk(
    width: ElemWidth,
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let n = *input
        .get(*pos)
        .ok_or_else(|| DecodeError::truncated("BPC chunk length"))? as usize;
    *pos += 1;
    if n == 0 || n > CHUNK_ELEMS {
        return Err(DecodeError::new("BPC chunk length out of range"));
    }
    let base = bpc_read_base(width, input, pos)?;
    out.push(base);
    if n < 2 {
        return Ok(());
    }
    let nbits = bpc_planes(width) as usize;
    let dbx = bpc_decode_planes(input, pos, nbits, (n - 1) as u32)?;
    // Invert DBX back to DBP.
    let mut dbp = vec![0u32; nbits];
    dbp[nbits - 1] = dbx[nbits - 1];
    for p in (0..nbits - 1).rev() {
        dbp[p] = dbx[p] ^ dbp[p + 1];
    }
    // Re-assemble the deltas and prefix-sum back to values.
    let mut prev = base;
    for i in 0..n - 1 {
        let mut delta: u128 = 0;
        for (p, plane) in dbp.iter().enumerate() {
            delta |= (((plane >> i) & 1) as u128) << p;
        }
        // Sign-extend the (width+1)-bit delta.
        let nb = bpc_planes(width);
        let signed = if delta >> (nb - 1) & 1 == 1 {
            (delta as i128) - (1i128 << nb)
        } else {
            delta as i128
        };
        prev = (prev as i128 + signed) as u64 & width.mask();
        out.push(prev);
    }
    Ok(())
}

/// Scalar BPC encoder (the original `BpcCodec::compress`).
pub fn bpc_compress(width: ElemWidth, input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    for chunk in input.chunks(CHUNK_ELEMS) {
        bpc_compress_chunk(width, chunk, out);
    }
}

/// Scalar BPC frame decoder (the original `BpcCodec::decode_frame`).
///
/// # Errors
///
/// Returns [`DecodeError`] on a malformed frame.
pub fn bpc_decode_frame(
    width: ElemWidth,
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let total = varint::read_u64(input, pos)? as usize;
    // Header counts are untrusted input: cap the speculative reserve.
    out.reserve(total.min(input.len().saturating_mul(8)));
    let mut decoded = 0;
    while decoded < total {
        let before = out.len();
        bpc_decompress_chunk(width, input, pos, out)?;
        decoded += out.len() - before;
    }
    if decoded != total {
        return Err(DecodeError::new("BPC chunk sizes disagree with header"));
    }
    Ok(())
}

/// Scalar RLE encoder (the original `RleCodec::compress`).
pub fn rle_compress(input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    let mut i = 0;
    while i < input.len() {
        let value = input[i];
        let mut run = 1u64;
        while i + (run as usize) < input.len() && input[i + run as usize] == value {
            run += 1;
        }
        varint::write_u64(out, value);
        varint::write_u64(out, run);
        i += run as usize;
    }
}

/// Scalar RLE frame decoder (the original `RleCodec::decode_frame`).
///
/// # Errors
///
/// Returns [`DecodeError`] on a malformed frame.
pub fn rle_decode_frame(
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let total = varint::read_u64(input, pos)? as usize;
    if total > crate::rle::MAX_DECODED_ELEMS {
        return Err(DecodeError::new("RLE stream exceeds decode size limit"));
    }
    // Header counts are untrusted input: cap the speculative reserve.
    out.reserve(total.min(1 << 20));
    let mut decoded = 0usize;
    while decoded < total {
        let value = varint::read_u64(input, pos)?;
        let run = varint::read_u64(input, pos)? as usize;
        if run == 0 || decoded + run > total {
            return Err(DecodeError::new("RLE run length out of range"));
        }
        out.extend(std::iter::repeat_n(value, run));
        decoded += run;
    }
    Ok(())
}

/// Scalar identity encoder (the original `IdentityCodec::compress`).
pub fn identity_compress(width: ElemWidth, input: &[u64], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    for &v in input {
        match width {
            ElemWidth::W32 => out.extend_from_slice(&(v as u32).to_le_bytes()),
            ElemWidth::W64 => out.extend_from_slice(&v.to_le_bytes()),
        }
    }
}

/// Scalar identity frame decoder (the original `IdentityCodec::decode_frame`).
///
/// # Errors
///
/// Returns [`DecodeError`] on a malformed frame.
pub fn identity_decode_frame(
    width: ElemWidth,
    input: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    let n = varint::read_u64(input, pos)? as usize;
    let bytes = width.bytes();
    // Header counts are untrusted input: cap the speculative reserve.
    out.reserve(n.min(input.len()));
    for _ in 0..n {
        if *pos + bytes > input.len() {
            return Err(DecodeError::truncated("identity element"));
        }
        let v = match width {
            ElemWidth::W32 => u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap()) as u64,
            ElemWidth::W64 => u64::from_le_bytes(input[*pos..*pos + 8].try_into().unwrap()),
        };
        *pos += bytes;
        out.push(v);
    }
    Ok(())
}

/// A [`Codec`] over the retained scalar implementations.
///
/// Differential tests compare each production codec against
/// `ReferenceCodec::new(kind)`, and the `codec-bench` harness uses it as
/// the machine-local throughput baseline.
///
/// # Examples
///
/// ```
/// use spzip_compress::{reference::ReferenceCodec, Codec, CodecKind};
///
/// let kernel = CodecKind::Delta.build();
/// let oracle = ReferenceCodec::new(CodecKind::Delta);
/// let data: Vec<u64> = (0..100).map(|i| 7 * i + 3).collect();
/// let (mut a, mut b) = (Vec::new(), Vec::new());
/// kernel.compress(&data, &mut a);
/// oracle.compress(&data, &mut b);
/// assert_eq!(a, b); // the wire format is bit-identical
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReferenceCodec {
    kind: CodecKind,
}

impl ReferenceCodec {
    /// Creates the scalar reference codec for `kind`.
    pub fn new(kind: CodecKind) -> Self {
        ReferenceCodec { kind }
    }

    /// The codec kind this reference implements.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }
}

impl Codec for ReferenceCodec {
    fn name(&self) -> &'static str {
        match self.kind {
            CodecKind::None => "identity-ref",
            CodecKind::Delta => "delta-ref",
            CodecKind::Bpc32 => "bpc32-ref",
            CodecKind::Bpc64 => "bpc64-ref",
            CodecKind::Rle => "rle-ref",
        }
    }

    fn compress(&self, input: &[u64], out: &mut Vec<u8>) {
        match self.kind {
            CodecKind::None => identity_compress(ElemWidth::W64, input, out),
            CodecKind::Delta => delta_compress(input, out),
            CodecKind::Bpc32 => bpc_compress(ElemWidth::W32, input, out),
            CodecKind::Bpc64 => bpc_compress(ElemWidth::W64, input, out),
            CodecKind::Rle => rle_compress(input, out),
        }
    }

    fn decode_frame(
        &self,
        input: &[u8],
        pos: &mut usize,
        out: &mut Vec<u64>,
    ) -> Result<(), DecodeError> {
        match self.kind {
            CodecKind::None => identity_decode_frame(ElemWidth::W64, input, pos, out),
            CodecKind::Delta => delta_decode_frame(input, pos, out),
            CodecKind::Bpc32 => bpc_decode_frame(ElemWidth::W32, input, pos, out),
            CodecKind::Bpc64 => bpc_decode_frame(ElemWidth::W64, input, pos, out),
            CodecKind::Rle => rle_decode_frame(input, pos, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_roundtrips_every_kind() {
        let data: Vec<u64> = (0..130).map(|i| (i * 97 + 13) % 5000).collect();
        for kind in CodecKind::all() {
            let codec = ReferenceCodec::new(kind);
            let mut buf = Vec::new();
            codec.compress(&data, &mut buf);
            let mut out = Vec::new();
            codec.decompress(&buf, &mut out).unwrap();
            assert_eq!(out, data, "kind {kind}");
            assert!(codec.name().ends_with("-ref"));
            assert_eq!(codec.kind(), kind);
        }
    }
}
