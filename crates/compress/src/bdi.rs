//! Base-Delta-Immediate (BDI) compression of 64-byte cache lines, after
//! Pekhimenko et al., PACT 2012.
//!
//! BDI is used by the *compressed memory hierarchy* baseline the paper
//! compares against in Fig. 22 (a VSC last-level cache with BDI, plus
//! LCP-compressed main memory). SpZip itself does not use BDI; the baseline
//! exists to show that line-granularity, semantics-unaware compression is
//! ineffective on irregular access patterns.
//!
//! A line is encoded as one base value plus per-word deltas if every delta
//! fits the chosen delta width; the "immediate" variant uses a second
//! implicit base of zero so lines mixing small values and pointers still
//! compress.

use crate::DecodeError;

/// The 64-byte line size BDI operates on.
pub const LINE_BYTES: usize = 64;

/// The encodings BDI tries, in increasing compressed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// All-zero line: 1 byte of metadata.
    Zeros,
    /// One repeated 8-byte value: 8 bytes + metadata.
    Repeated,
    /// Base `base_bytes`, deltas `delta_bytes`, with an implicit zero base.
    BaseDelta {
        /// Size of each word / the base, in bytes (2, 4 or 8).
        base_bytes: u8,
        /// Size of each stored delta, in bytes (1, 2 or 4).
        delta_bytes: u8,
    },
    /// Incompressible: stored raw.
    Uncompressed,
}

impl BdiEncoding {
    /// Compressed size in bytes for this encoding (including a 1-byte tag,
    /// matching common evaluations of BDI).
    pub fn compressed_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros => 1,
            BdiEncoding::Repeated => 1 + 8,
            BdiEncoding::BaseDelta {
                base_bytes,
                delta_bytes,
            } => {
                let words = LINE_BYTES / base_bytes as usize;
                // base + bitmap of which words use the zero base + deltas
                1 + base_bytes as usize + 2 + words * delta_bytes as usize
            }
            BdiEncoding::Uncompressed => 1 + LINE_BYTES,
        }
    }
}

/// The candidate base/delta configurations, best-first.
const CONFIGS: [(u8, u8); 6] = [(8, 1), (8, 2), (4, 1), (8, 4), (4, 2), (2, 1)];

fn words_of(line: &[u8; LINE_BYTES], base_bytes: u8) -> Vec<u64> {
    line.chunks(base_bytes as usize)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect()
}

fn fits_signed(delta: i64, bytes: u8) -> bool {
    let bits = bytes as u32 * 8;
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&delta)
}

/// Picks the best BDI encoding for a 64-byte line.
///
/// # Examples
///
/// ```
/// use spzip_compress::bdi::{best_encoding, BdiEncoding};
///
/// let zeros = [0u8; 64];
/// assert_eq!(best_encoding(&zeros), BdiEncoding::Zeros);
/// assert_eq!(best_encoding(&zeros).compressed_bytes(), 1);
/// ```
pub fn best_encoding(line: &[u8; LINE_BYTES]) -> BdiEncoding {
    if line.iter().all(|&b| b == 0) {
        return BdiEncoding::Zeros;
    }
    let words8 = words_of(line, 8);
    if words8.windows(2).all(|w| w[0] == w[1]) {
        return BdiEncoding::Repeated;
    }
    let mut best = BdiEncoding::Uncompressed;
    for &(base_bytes, delta_bytes) in &CONFIGS {
        let words = words_of(line, base_bytes);
        // First word that is not immediate (near zero) serves as the base.
        let base = words
            .iter()
            .copied()
            .find(|&w| !fits_signed(w as i64, delta_bytes))
            .unwrap_or(0);
        let ok = words.iter().all(|&w| {
            let sw = w as i64;
            fits_signed(sw, delta_bytes) || fits_signed(sw.wrapping_sub(base as i64), delta_bytes)
        });
        if ok {
            let cand = BdiEncoding::BaseDelta {
                base_bytes,
                delta_bytes,
            };
            if cand.compressed_bytes() < best.compressed_bytes() {
                best = cand;
            }
        }
    }
    if best.compressed_bytes() >= LINE_BYTES {
        BdiEncoding::Uncompressed
    } else {
        best
    }
}

/// Compressed size in bytes of a 64-byte line under BDI.
///
/// This is what the compressed-memory-hierarchy model consumes; BDI encode/
/// decode of payload bytes is exercised by [`compress_line`]/[`decompress_line`].
pub fn compressed_line_bytes(line: &[u8; LINE_BYTES]) -> usize {
    best_encoding(line).compressed_bytes()
}

/// Fully encodes a line (tag byte + payload). Provided so the baseline model
/// is auditable end to end, not just a size formula.
pub fn compress_line(line: &[u8; LINE_BYTES]) -> Vec<u8> {
    let enc = best_encoding(line);
    let mut out = Vec::with_capacity(enc.compressed_bytes());
    match enc {
        BdiEncoding::Zeros => out.push(0),
        BdiEncoding::Repeated => {
            out.push(1);
            out.extend_from_slice(&line[..8]);
        }
        BdiEncoding::BaseDelta {
            base_bytes,
            delta_bytes,
        } => {
            // Sizes are powers of two; the tag stores their log2 in 2-bit
            // fields (base in bits 3:2, delta in bits 1:0).
            out.push(
                0x10 | (base_bytes.trailing_zeros() << 2) as u8
                    | delta_bytes.trailing_zeros() as u8,
            );
            let words = words_of(line, base_bytes);
            let base = words
                .iter()
                .copied()
                .find(|&w| !fits_signed(w as i64, delta_bytes))
                .unwrap_or(0);
            out.extend_from_slice(&base.to_le_bytes()[..base_bytes as usize]);
            let mut bitmap = 0u16;
            for (i, &w) in words.iter().enumerate() {
                if !fits_signed(w as i64, delta_bytes) {
                    bitmap |= 1 << i;
                }
            }
            out.extend_from_slice(&bitmap.to_le_bytes());
            for &w in &words {
                let delta = if fits_signed(w as i64, delta_bytes) {
                    w as i64
                } else {
                    (w as i64).wrapping_sub(base as i64)
                };
                out.extend_from_slice(&delta.to_le_bytes()[..delta_bytes as usize]);
            }
        }
        BdiEncoding::Uncompressed => {
            out.push(0xFF);
            out.extend_from_slice(line);
        }
    }
    out
}

/// Decodes a line produced by [`compress_line`].
///
/// # Panics
///
/// Panics if `data` is not a valid encoding; the baseline model only ever
/// decodes its own output. Untrusted inputs go through
/// [`try_decompress_line`] instead.
pub fn decompress_line(data: &[u8]) -> [u8; LINE_BYTES] {
    try_decompress_line(data).expect("valid BDI encoding")
}

/// Decodes a line produced by [`compress_line`], validating the encoding.
///
/// # Errors
///
/// Returns [`DecodeError`] if `data` is empty, carries an unknown or
/// malformed tag, or its length disagrees with the tagged encoding.
pub fn try_decompress_line(data: &[u8]) -> Result<[u8; LINE_BYTES], DecodeError> {
    let tag = *data
        .first()
        .ok_or_else(|| DecodeError::truncated("BDI tag"))?;
    let mut line = [0u8; LINE_BYTES];
    match tag {
        0 => {
            if data.len() != 1 {
                return Err(DecodeError::new("BDI zeros line with trailing bytes"));
            }
        }
        1 => {
            if data.len() != 9 {
                return Err(DecodeError::new("BDI repeated line length mismatch"));
            }
            for chunk in line.chunks_mut(8) {
                chunk.copy_from_slice(&data[1..9]);
            }
        }
        0xFF => {
            if data.len() != 1 + LINE_BYTES {
                return Err(DecodeError::new("BDI raw line length mismatch"));
            }
            line.copy_from_slice(&data[1..1 + LINE_BYTES]);
        }
        tag => {
            // Base-delta tags are 0x10 | log2(base_bytes) << 2 | log2(delta_bytes)
            // with base ∈ {2, 4, 8} and delta ∈ {1, 2, 4} strictly narrower.
            let base_log2 = ((tag >> 2) & 0x3) as usize;
            let delta_log2 = (tag & 0x3) as usize;
            if tag & !0x1F != 0 || tag & 0x10 == 0 || base_log2 == 0 || delta_log2 >= base_log2 {
                return Err(DecodeError::new(format!("unknown BDI tag {tag:#x}")));
            }
            let base_bytes = 1usize << base_log2;
            let delta_bytes = 1usize << delta_log2;
            let words = LINE_BYTES / base_bytes;
            if data.len() != 1 + base_bytes + 2 + words * delta_bytes {
                return Err(DecodeError::new("BDI base-delta line length mismatch"));
            }
            let mut pos = 1;
            let mut base_buf = [0u8; 8];
            base_buf[..base_bytes].copy_from_slice(&data[pos..pos + base_bytes]);
            let base = u64::from_le_bytes(base_buf) as i64;
            pos += base_bytes;
            let bitmap = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap());
            pos += 2;
            for i in 0..words {
                let mut dbuf = [0u8; 8];
                dbuf[..delta_bytes].copy_from_slice(&data[pos..pos + delta_bytes]);
                pos += delta_bytes;
                // Sign-extend the delta.
                let raw = u64::from_le_bytes(dbuf);
                let shift = 64 - delta_bytes as u32 * 8;
                let delta = ((raw << shift) as i64) >> shift;
                let value = if bitmap >> i & 1 == 1 {
                    base.wrapping_add(delta) as u64
                } else {
                    delta as u64
                };
                let dst = &mut line[i * base_bytes..(i + 1) * base_bytes];
                dst.copy_from_slice(&value.to_le_bytes()[..base_bytes]);
            }
        }
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_from_u32s(values: &[u32; 16]) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (i, v) in values.iter().enumerate() {
            line[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        line
    }

    fn roundtrip(line: &[u8; LINE_BYTES]) {
        let enc = compress_line(line);
        assert_eq!(&decompress_line(&enc), line);
        // Size formula matches the actual encoding (within the formula's
        // fixed layout).
        assert_eq!(enc.len(), best_encoding(line).compressed_bytes());
    }

    #[test]
    fn zeros_and_repeated() {
        roundtrip(&[0u8; LINE_BYTES]);
        let mut line = [0u8; LINE_BYTES];
        for chunk in line.chunks_mut(8) {
            chunk.copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        }
        roundtrip(&line);
        assert_eq!(best_encoding(&line), BdiEncoding::Repeated);
    }

    #[test]
    fn near_base_values_compress() {
        let line = line_from_u32s(&[
            1_000_000, 1_000_003, 1_000_001, 1_000_090, 1_000_007, 1_000_002, 1_000_013, 1_000_040,
            1_000_000, 1_000_003, 1_000_001, 1_000_090, 1_000_007, 1_000_002, 1_000_013, 1_000_040,
        ]);
        let enc = best_encoding(&line);
        assert!(enc.compressed_bytes() < LINE_BYTES, "{enc:?}");
        roundtrip(&line);
    }

    #[test]
    fn mixed_small_and_large_uses_immediate() {
        // Pointers interleaved with small counters: the dual-base trick.
        let line = line_from_u32s(&[
            5,
            0x4000_0000,
            7,
            0x4000_0005,
            2,
            0x4000_0009,
            0,
            0x4000_0002,
            5,
            0x4000_0000,
            7,
            0x4000_0005,
            2,
            0x4000_0009,
            0,
            0x4000_0002,
        ]);
        let enc = best_encoding(&line);
        assert!(matches!(enc, BdiEncoding::BaseDelta { .. }), "{enc:?}");
        roundtrip(&line);
    }

    #[test]
    fn scattered_pointers_are_uncompressible() {
        let mut line = [0u8; LINE_BYTES];
        for i in 0..8 {
            let v = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            line[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        assert_eq!(best_encoding(&line), BdiEncoding::Uncompressed);
        roundtrip(&line);
    }

    #[test]
    fn compressed_bytes_ordering() {
        assert!(BdiEncoding::Zeros.compressed_bytes() < BdiEncoding::Repeated.compressed_bytes());
        assert!(
            BdiEncoding::Repeated.compressed_bytes() < BdiEncoding::Uncompressed.compressed_bytes()
        );
    }
}
