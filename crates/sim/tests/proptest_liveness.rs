//! Property-based tests for the liveness checker against the machine's
//! deadlock watchdog: over a randomized family of binning pipelines, the
//! static verdict and the dynamic outcome must agree in both directions —
//! liveness-clean pipelines never trip the watchdog, and every finding's
//! counterexample schedule replays to a wedge.

use proptest::prelude::*;
use spzip_core::dcl::{MemQueueMode, OperatorKind, Pipeline, PipelineBuilder};
use spzip_core::func::FuncEngine;
use spzip_core::liveness::{self, CoreStep, LivenessConfig};
use spzip_core::memory::MemoryImage;
use spzip_mem::DataClass;
use spzip_sim::{CoreWork, DeadlockReport, Event, Machine, MachineConfig};

/// The randomized family: core pairs -> buffer MemQueue -> core output.
/// Chunk size and output capacity decide whether the chunk backlog fits;
/// the declared total always fills the 128-word scratchpad so the
/// checker's capacity model matches the engine's exactly.
fn binning_pipeline(chunk_elems: u32, out_words: u16) -> (Pipeline, MemoryImage) {
    let mut img = MemoryImage::new();
    let stride = 4096;
    let data_base = img.alloc("mqu-bins", stride, DataClass::Updates);
    let meta_addr = img.alloc("mqu-meta", 64, DataClass::Updates);
    let mut b = PipelineBuilder::new();
    let q0 = b.queue(16);
    let q1 = b.queue(out_words);
    let _pad = b.queue(128 - 16 - out_words);
    b.operator(
        OperatorKind::MemQueue {
            num_queues: 1,
            data_base,
            stride,
            meta_addr,
            chunk_elems,
            elem_bytes: 8,
            mode: MemQueueMode::Buffer,
            class: DataClass::Updates,
        },
        q0,
        vec![q1],
    );
    (b.build().expect("lint-clean by construction"), img)
}

/// Replays a core drive program through the functional engine and the
/// machine; returns the watchdog report if the machine wedged.
fn replay(p: &Pipeline, img: &mut MemoryImage, program: &[CoreStep]) -> Option<DeadlockReport> {
    let mut func = FuncEngine::new(p.clone());
    let mut pair_count = 0u64;
    let mut events = Vec::new();
    for step in program {
        match *step {
            CoreStep::Enqueue {
                q,
                quarters,
                marker,
            } => {
                let cost = if marker {
                    func.enqueue_marker(q, 0)
                } else {
                    // (bin, payload) alternation for the single-bin MQU.
                    let v = if pair_count.is_multiple_of(2) {
                        0
                    } else {
                        pair_count
                    };
                    pair_count += 1;
                    func.enqueue_value(q, v, quarters as u8)
                };
                events.push(Event::FetcherEnqueue { q, quarters: cost });
            }
            CoreStep::Absorb { q } => {
                func.run(img);
                for (_, cost) in func.drain_output_costed(q) {
                    events.push(Event::FetcherDequeue {
                        q,
                        quarters: cost as u16,
                    });
                }
            }
        }
    }
    func.run(img);
    let trace = func.take_firings();
    let mut cfg = MachineConfig::paper_scaled();
    cfg.mem.cores = 2;
    cfg.deadlock_cycles = 30_000;
    let mut m = Machine::new(cfg);
    m.load_fetcher_program_for(0, p);
    let mut work = Some(CoreWork {
        events,
        fetcher_trace: Some(trace),
        compressor_trace: None,
    });
    let mut source = move |core: usize| if core == 0 { work.take() } else { None };
    m.run_phase(&mut source);
    m.take_deadlock()
}

/// Checks one family member both ways and asserts agreement.
fn check_agreement(chunk_elems: u32, out_words: u16) {
    let (p, mut img) = binning_pipeline(chunk_elems, out_words);
    let report = liveness::verify(&p);
    match report.findings.first() {
        None => {
            let program = liveness::drive_program(&p, &LivenessConfig::default());
            let wedge = replay(&p, &mut img, &program);
            prop_assert!(
                wedge.is_none(),
                "liveness-clean (chunk {chunk_elems}, out {out_words}w) but the watchdog \
                 tripped: {wedge:?}"
            );
        }
        Some(f) => {
            let wedge = replay(&p, &mut img, &f.counterexample.core_program);
            prop_assert!(
                wedge.is_some(),
                "{} reported (chunk {chunk_elems}, out {out_words}w) but its counterexample \
                 replayed cleanly",
                f.diagnostic.code
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Static and dynamic verdicts agree across the whole family.
    #[test]
    fn liveness_verdicts_match_the_watchdog(
        chunk_elems in 2u32..=8,
        out_words in 16u16..=56,
    ) {
        check_agreement(chunk_elems, out_words);
    }
}

/// Both directions of the property are reachable: a known-wedging member
/// (the corpus's mqu-backlog shape) and a known-clean one.
#[test]
fn family_spans_both_verdicts() {
    let (dirty, _) = binning_pipeline(4, 16);
    assert!(
        !liveness::verify(&dirty).is_clean(),
        "chunk 4 into a 16-word queue must backlog"
    );
    let (clean, _) = binning_pipeline(4, 40);
    assert!(
        liveness::verify(&clean).is_clean(),
        "chunk 4 into a 40-word queue must drain"
    );
}
