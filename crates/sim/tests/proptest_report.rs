//! Property-based tests on the `RunReport` `key value` serialization:
//! `to_kv` → `from_kv` must be lossless for every representable report,
//! including extreme counter values — results caches persist these files
//! across sessions, so a single lossy field silently corrupts figures.

use proptest::prelude::*;
use spzip_mem::cache::CacheStats;
use spzip_mem::stats::TrafficStats;
use spzip_mem::DataClass;
use spzip_sim::report::RunReport;

/// Counters that stress the serialization: zeros, small values, and the
/// extremes a `u64` can hold.
fn arb_counter() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        any::<u64>(),
        0u64..1_000_000,
    ]
}

/// Per-class byte counts: extreme, but capped so the 12-way sum in
/// `total_bytes` cannot overflow (the serialization itself never sums).
fn arb_bytes() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX / 16),
        any::<u64>().prop_map(|v| v >> 4),
        0u64..1_000_000,
    ]
}

fn arb_report() -> impl Strategy<Value = RunReport> {
    (
        arb_counter(),
        proptest::collection::vec(arb_bytes(), 12),
        (arb_counter(), arb_counter(), arb_counter()),
        (arb_counter(), arb_counter()),
        (arb_counter(), arb_counter(), arb_counter(), arb_counter()),
        // Finite utilizations only: NaN is unrepresentable in a run and
        // would defeat equality checking. (The vendored proptest has no
        // float-range strategy, so derive from an integer.)
        (0u32..=1_000_000).prop_map(|v| f64::from(v) / 1_000_000.0),
    )
        .prop_map(
            |(cycles, class_bytes, (hits, misses, evictions), (inval, atomics), rest, util)| {
                let mut traffic = TrafficStats::new();
                for (i, c) in DataClass::all().into_iter().enumerate() {
                    traffic.record_read(c, class_bytes[2 * i]);
                    traffic.record_write(c, class_bytes[2 * i + 1]);
                }
                traffic.invalidations = inval;
                traffic.atomics = atomics;
                let (fetcher_fired, compressor_fired, core_stall_cycles, retired_events) = rest;
                RunReport {
                    cycles,
                    traffic,
                    llc: CacheStats {
                        hits,
                        misses,
                        evictions,
                    },
                    dram_utilization: util,
                    fetcher_fired,
                    compressor_fired,
                    core_stall_cycles,
                    retired_events,
                }
            },
        )
}

proptest! {
    #[test]
    fn kv_roundtrip_is_lossless(report in arb_report()) {
        let kv = report.to_kv();
        let back = RunReport::from_kv(&kv).expect("serialized report must parse");
        // `to_kv` covers every field, so byte-identical re-serialization
        // is full field equality (floats use shortest-roundtrip `{:?}`).
        prop_assert_eq!(back.to_kv(), kv);
    }

    #[test]
    fn kv_roundtrip_preserves_ratios(report in arb_report()) {
        let back = RunReport::from_kv(&report.to_kv()).unwrap();
        prop_assert_eq!(back.cycles, report.cycles);
        prop_assert_eq!(back.traffic.total_bytes(), report.traffic.total_bytes());
        prop_assert_eq!(back.retired_events, report.retired_events);
        prop_assert_eq!(
            back.dram_utilization.to_bits(),
            report.dram_utilization.to_bits()
        );
    }
}
