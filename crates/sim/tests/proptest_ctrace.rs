//! Property-based tests on the compressed trace layer: for arbitrary
//! event sequences, the columnar codec roundtrip is lossless, chunk
//! hashing is a pure function of content, and the chunked analysis emits
//! the same verdicts as the legacy flat-trace analysis — the compressed
//! path may never change what the sanitizer reports.

use proptest::prelude::*;
use spzip_core::QueueId;
use spzip_mem::sanitize::{Actor, MemRecord};
use spzip_mem::{DataClass, MemOp};
use spzip_sim::ctrace::{CTrace, CHUNK_EVENTS};
use spzip_sim::sanitize::{analyze, analyze_compressed, render, RunContext, Trace, TraceEvent};

const CORES: usize = 4;

fn arb_actor() -> impl Strategy<Value = Actor> {
    (0..CORES, 0u8..3).prop_map(|(i, kind)| match kind {
        0 => Actor::Core(i),
        1 => Actor::Fetcher(i),
        _ => Actor::Compressor(i),
    })
}

fn arb_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Load),
        Just(MemOp::Store),
        Just(MemOp::StreamStore),
        Just(MemOp::Atomic),
    ]
}

fn arb_class() -> impl Strategy<Value = DataClass> {
    prop_oneof![Just(DataClass::Frontier), Just(DataClass::Updates)]
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    // Addresses cluster on a few words so unordered accesses actually
    // collide; cycles are unconstrained (the wire format must carry any
    // stamp, monotonic or not).
    prop_oneof![
        (
            arb_actor(),
            0u64..64,
            1u32..16,
            arb_op(),
            arb_class(),
            any::<u64>()
        )
            .prop_map(|(actor, word, bytes, op, class, cycle)| {
                TraceEvent::Mem(MemRecord {
                    actor,
                    addr: 0x1000 + word * 4,
                    bytes,
                    op,
                    class,
                    cycle,
                })
            }),
        (arb_actor(), arb_actor(), 0u8..4, 1u32..9, any::<u64>()).prop_map(
            |(actor, engine, q, quarters, cycle)| TraceEvent::Push {
                actor,
                engine,
                q: q as QueueId,
                quarters,
                cycle,
            }
        ),
        (arb_actor(), arb_actor(), 0u8..4, 1u32..9, any::<u64>()).prop_map(
            |(actor, engine, q, quarters, cycle)| TraceEvent::Pop {
                actor,
                engine,
                q: q as QueueId,
                quarters,
                cycle,
            }
        ),
        (arb_actor(), arb_actor(), any::<u64>()).prop_map(|(actor, engine, cycle)| {
            TraceEvent::Drain {
                actor,
                engine,
                cycle,
            }
        }),
        any::<u64>().prop_map(|cycle| TraceEvent::Barrier { cycle }),
    ]
}

fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    // Spans zero, partial, and multiple chunks.
    proptest::collection::vec(arb_event(), 0..3 * CHUNK_EVENTS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compressed_roundtrip_is_lossless(events in arb_events()) {
        let t = CTrace::from_events(CORES, &events);
        prop_assert_eq!(t.len(), events.len());
        prop_assert_eq!(t.decode_all().expect("decodes"), events);
    }

    #[test]
    fn chunk_hashes_are_content_deterministic(events in arb_events()) {
        let a = CTrace::from_events(CORES, &events);
        let b = CTrace::from_events(CORES, &events);
        let ha: Vec<u64> = a.chunks().iter().map(|c| c.hash).collect();
        let hb: Vec<u64> = b.chunks().iter().map(|c| c.hash).collect();
        prop_assert_eq!(ha, hb);
        prop_assert_eq!(a.compressed_bytes(), b.compressed_bytes());
    }

    #[test]
    fn compressed_analysis_matches_legacy(events in arb_events()) {
        let ctx = RunContext::empty(CORES);
        let legacy = analyze(
            &Trace { cores: CORES, events: events.clone() },
            &ctx,
        );
        let compressed = analyze_compressed(&CTrace::from_events(CORES, &events), &ctx);
        prop_assert_eq!(
            compressed.len(),
            legacy.len(),
            "verdicts diverge\ncompressed:\n{}\nlegacy:\n{}",
            render(&compressed),
            render(&legacy)
        );
        for (c, o) in compressed.iter().zip(&legacy) {
            prop_assert_eq!(c.code, o.code);
            prop_assert_eq!(&c.message, &o.message);
            prop_assert_eq!(&c.site, &o.site);
        }
    }
}
