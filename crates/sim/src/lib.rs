#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Multicore simulation engine.
//!
//! Ties the substrates together into the Table II system: 16 cores, each
//! with a private SpZip fetcher and compressor, over the shared memory
//! hierarchy of `spzip-mem`. Applications are *execution-generated,
//! replay-timed*: they run functionally (producing exact results) while
//! emitting per-core [`event::Event`] streams and per-engine firing
//! traces, which the [`machine::Machine`] replays cycle-approximately —
//! cores with a bounded outstanding-miss window, engines firing one
//! operator per cycle, DRAM channels queueing by bandwidth.
//!
//! Dynamic load balance matches the paper's runtime ("threads enqueue
//! traversals to fetchers chunk by chunk, and perform work-stealing of
//! chunks"): the machine pulls the next chunk of work for whichever core
//! drains its event queue first.

pub mod ctrace;
pub mod event;
pub mod machine;
pub mod report;
pub mod sanitize;

pub use event::Event;
pub use machine::{CoreWork, DeadlockReport, Machine, MachineConfig, WaitForEdge, WorkSource};
pub use report::{RunReport, REPORT_FORMAT};
