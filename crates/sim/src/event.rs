//! The event protocol between instrumented applications and the machine.
//!
//! Applications emit one [`Event`] stream per core; the machine replays
//! them with timing. Queue events reference the core's own fetcher or
//! compressor and block on occupancy, which is how decoupled execution and
//! backpressure reach the core's timeline.

use spzip_core::QueueId;
use spzip_mem::Access;

/// One timed action of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Busy the core for `n` cycles (straight-line instructions).
    Compute(u32),
    /// Issue a memory access through the core port; completion occupies a
    /// slot in the core's outstanding-miss window.
    Mem(Access),
    /// Push `quarters` quarter-words into fetcher input queue `q`; blocks
    /// while the queue is full.
    FetcherEnqueue {
        /// Target queue.
        q: QueueId,
        /// Payload size in quarter-words.
        quarters: u16,
    },
    /// Pop `quarters` quarter-words from fetcher output queue `q`; blocks
    /// while the queue holds less.
    FetcherDequeue {
        /// Source queue.
        q: QueueId,
        /// Payload size in quarter-words.
        quarters: u16,
    },
    /// Push `quarters` quarter-words into compressor input queue `q`;
    /// blocks while the queue is full.
    CompressorEnqueue {
        /// Target queue.
        q: QueueId,
        /// Payload size in quarter-words.
        quarters: u16,
    },
    /// Block until this core's compressor has drained all in-flight work
    /// (`spzip_comp_drain()` in Listing 5).
    CompressorDrain,
    /// Block until this core's fetcher has drained all in-flight work.
    FetcherDrain,
}

impl Event {
    /// A convenience load event.
    pub fn load(addr: u64, bytes: u32, class: spzip_mem::DataClass) -> Event {
        Event::Mem(Access::new(addr, bytes, spzip_mem::MemOp::Load, class))
    }

    /// A convenience store event.
    pub fn store(addr: u64, bytes: u32, class: spzip_mem::DataClass) -> Event {
        Event::Mem(Access::new(addr, bytes, spzip_mem::MemOp::Store, class))
    }

    /// A convenience atomic read-modify-write event.
    pub fn atomic(addr: u64, bytes: u32, class: spzip_mem::DataClass) -> Event {
        Event::Mem(Access::new(addr, bytes, spzip_mem::MemOp::Atomic, class))
    }

    /// A convenience streaming (full-line, no-RFO) store event.
    pub fn stream_store(addr: u64, bytes: u32, class: spzip_mem::DataClass) -> Event {
        Event::Mem(Access::new(
            addr,
            bytes,
            spzip_mem::MemOp::StreamStore,
            class,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spzip_mem::{DataClass, MemOp};

    #[test]
    fn convenience_constructors() {
        let e = Event::load(64, 4, DataClass::SourceVertex);
        match e {
            Event::Mem(a) => {
                assert_eq!(a.op, MemOp::Load);
                assert_eq!(a.addr, 64);
            }
            _ => panic!("wrong event"),
        }
        assert!(
            matches!(Event::atomic(0, 8, DataClass::Other), Event::Mem(a) if a.op == MemOp::Atomic)
        );
        assert!(
            matches!(Event::store(0, 8, DataClass::Other), Event::Mem(a) if a.op == MemOp::Store)
        );
        assert!(
            matches!(Event::stream_store(0, 64, DataClass::Updates), Event::Mem(a) if a.op == MemOp::StreamStore)
        );
    }
}
