//! SimSanitizer: happens-before race detection and invariant checking over
//! the replayed trace.
//!
//! The simulator replays per-core event streams against a timing model, so
//! every ordering obligation of the instrumented application is visible in
//! one place: DCL queue pushes and pops, engine drains, phase boundaries,
//! and the memory accesses whose correctness depends on them. This module
//! analyzes that record after a run:
//!
//! * a vector-clock **race detector** ([`RaceDetector`]) over watched
//!   memory words (frontier and binned-update regions; see
//!   [`spzip_mem::sanitize::Probe::watched`]), with queue push/pop edges,
//!   engine drains, phase barriers, and coherence-serialized atomics as
//!   the synchronization edges;
//! * a **queue-protocol checker** ([`QueueProtocol`]): occupancy never
//!   goes negative (no pop-before-push) and every quarter-word pushed is
//!   popped by the end of the run (no leaked slots);
//! * a **window checker** ([`WindowCheck`]): no core finishes with more
//!   outstanding-miss slots allocated than the MLP window has;
//! * a **line-accounting checker** ([`Accounting`]): every line the DRAM
//!   model moved is attributed to exactly one traffic class, in both
//!   directions.
//!
//! Checkers implement the [`Sanitizer`] trait and are pluggable; the
//! codec byte-conservation checks (S008/S009) live in
//! `spzip_compress::sanitize` and feed in through the application layer.
//!
//! Two analysis paths share one checker implementation:
//!
//! * [`analyze`] walks a flat, uncompressed [`Trace`] — the legacy path,
//!   kept as the differential oracle;
//! * [`analyze_compressed`] drives the same folds ([`RaceFold`],
//!   [`QueueFold`]) chunk-by-chunk over a codec-compressed
//!   [`crate::ctrace::CTrace`], memoizing decode and
//!   summarization by chunk content hash and adding `S010`
//!   trace-integrity checks. Both paths emit identical violations on any
//!   intact trace.
//!
//! Everything here is ordinary always-compiled code. The `sanitize`
//! feature only gates the *collection* hooks in the machine and memory
//! hierarchy, so default builds pay nothing.
//!
//! # Trace order
//!
//! [`Trace::events`] is in **execution order** — the order the machine
//! processed the underlying operations — not sorted by cycle. Cores run
//! their local clocks ahead of global time within a quantum, so cycle
//! numbers interleave non-monotonically across actors; execution order is
//! the causally consistent one (a pop is always recorded after the push
//! it consumed, a drain after the engine work it waited for). Cycle
//! numbers are kept for diagnostics only.

use crate::ctrace::CTrace;
use spzip_core::QueueId;
use spzip_mem::sanitize::{Actor, MemRecord};
use spzip_mem::stats::TrafficStats;
use spzip_mem::{DataClass, MemOp, LINE_BYTES};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Race detection granularity: the 4-byte word, the smallest element the
/// applications store (frontier flags are `u32`).
pub const WORD_BYTES: u64 = 4;

/// Stable sanitizer diagnostic codes (the `S` registry; the DCL linter
/// owns `E`/`W`). See `DESIGN.md` for the invariant each one guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// S001 — two writes to the same watched word with no happens-before
    /// edge between them.
    WriteWriteRace,
    /// S002 — a read and a write of the same watched word with no
    /// happens-before edge between them.
    ReadWriteRace,
    /// S003 — a queue pop of more quarter-words than the queue held.
    PopBeforePush,
    /// S004 — an operator still holds buffered chunk state at a drain
    /// point (a chunk was opened but never closed with a marker).
    UnterminatedChunk,
    /// S005 — a queue ends the run with pushed quarter-words never popped.
    QueueSlotLeak,
    /// S006 — a core finishes with more outstanding-miss slots allocated
    /// than its MLP window has.
    WindowLeak,
    /// S007 — DRAM line movements do not match the per-class byte totals:
    /// some traffic was moved but attributed to no class, or vice versa.
    LineAccounting,
    /// S008 — compress∘decompress is not the identity on a compressed
    /// region.
    RoundtripMismatch,
    /// S009 — a region's framed length does not match the bytes its
    /// frames actually consume.
    FramedLength,
    /// S010 — the compressed trace itself is damaged: a chunk fails to
    /// decode, or the chunk sequence is reordered, duplicated, or has
    /// gaps.
    TraceIntegrity,
}

impl Code {
    /// All codes, in registry order.
    pub fn all() -> [Code; 10] {
        [
            Code::WriteWriteRace,
            Code::ReadWriteRace,
            Code::PopBeforePush,
            Code::UnterminatedChunk,
            Code::QueueSlotLeak,
            Code::WindowLeak,
            Code::LineAccounting,
            Code::RoundtripMismatch,
            Code::FramedLength,
            Code::TraceIntegrity,
        ]
    }

    /// The stable code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::WriteWriteRace => "S001",
            Code::ReadWriteRace => "S002",
            Code::PopBeforePush => "S003",
            Code::UnterminatedChunk => "S004",
            Code::QueueSlotLeak => "S005",
            Code::WindowLeak => "S006",
            Code::LineAccounting => "S007",
            Code::RoundtripMismatch => "S008",
            Code::FramedLength => "S009",
            Code::TraceIntegrity => "S010",
        }
    }

    /// One-line description of the invariant the code guards.
    pub fn summary(self) -> &'static str {
        match self {
            Code::WriteWriteRace => "unordered writes to a shared word",
            Code::ReadWriteRace => "unordered read/write of a shared word",
            Code::PopBeforePush => "queue pop exceeds occupancy",
            Code::UnterminatedChunk => "chunk open at drain",
            Code::QueueSlotLeak => "queue not drained by end of run",
            Code::WindowLeak => "miss window over-subscribed",
            Code::LineAccounting => "DRAM lines not attributed to a class",
            Code::RoundtripMismatch => "codec round-trip not identity",
            Code::FramedLength => "framed length mismatch",
            Code::TraceIntegrity => "compressed trace chunk corrupt or out of order",
        }
    }

    /// Generic remediation hint.
    pub fn hint(self) -> &'static str {
        match self {
            Code::WriteWriteRace | Code::ReadWriteRace => {
                "order the accesses with a queue edge, an engine drain, or a phase barrier"
            }
            Code::PopBeforePush => {
                "the consumer ran ahead of the producer; check enqueue/dequeue placement"
            }
            Code::UnterminatedChunk => "close every chunk with its length/marker before draining",
            Code::QueueSlotLeak => "drain engines before ending the phase that feeds them",
            Code::WindowLeak => "the MLP window accounting leaked a slot; check retire paths",
            Code::LineAccounting => {
                "a hierarchy path moved a line without recording its traffic class"
            }
            Code::RoundtripMismatch => "the codec or the region it was framed into is corrupt",
            Code::FramedLength => "recompute the region's framed length after the last append",
            Code::TraceIntegrity => {
                "regenerate the trace; a damaged trace cannot vouch for the run it records"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violated invariant, with enough actor/cycle/address context to
/// localize it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant.
    pub code: Code,
    /// What happened, concretely.
    pub message: String,
    /// Where: actor/cycle/address context rendered on the `-->` line.
    pub site: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(code: Code, message: impl Into<String>, site: impl Into<String>) -> Self {
        Violation {
            code,
            message: message.into(),
            site: site.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.code, self.message)
    }
}

/// Renders violations in the compiler style the DCL linter uses:
///
/// ```text
/// error[S001]: write/write race on Updates word 0x3210
///   --> compressor 1 store at cycle 4821 vs fetcher 0 store at cycle 4770 (addr 0x3210)
///    = help: order the accesses with a queue edge, an engine drain, or a phase barrier
/// ```
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!("{v}\n"));
        out.push_str(&format!("  --> {}\n", v.site));
        out.push_str(&format!("   = help: {}\n", v.code.hint()));
    }
    if !violations.is_empty() {
        out.push_str(&format!("{} sanitizer violation(s)\n", violations.len()));
    }
    out
}

/// One entry of the synchronization/memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A watched memory access.
    Mem(MemRecord),
    /// `actor` pushed `quarters` quarter-words into queue `q` of `engine`
    /// (a release: downstream pops acquire everything the pusher had done).
    Push {
        /// Who pushed.
        actor: Actor,
        /// Whose queue.
        engine: Actor,
        /// Which queue.
        q: QueueId,
        /// Quarter-words moved.
        quarters: u32,
        /// Cycle, for diagnostics.
        cycle: u64,
    },
    /// `actor` popped `quarters` quarter-words from queue `q` of `engine`.
    Pop {
        /// Who popped.
        actor: Actor,
        /// Whose queue.
        engine: Actor,
        /// Which queue.
        q: QueueId,
        /// Quarter-words moved.
        quarters: u32,
        /// Cycle, for diagnostics.
        cycle: u64,
    },
    /// `actor` observed `engine` idle (a drain: the observer acquires
    /// everything the engine had done).
    Drain {
        /// Who waited.
        actor: Actor,
        /// Which engine was drained.
        engine: Actor,
        /// Cycle, for diagnostics.
        cycle: u64,
    },
    /// End of a phase: a global barrier across all actors.
    Barrier {
        /// Cycle, for diagnostics.
        cycle: u64,
    },
}

impl TraceEvent {
    /// The diagnostic cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Mem(r) => r.cycle,
            TraceEvent::Push { cycle, .. }
            | TraceEvent::Pop { cycle, .. }
            | TraceEvent::Drain { cycle, .. }
            | TraceEvent::Barrier { cycle } => cycle,
        }
    }

    /// Tie-break rank when merging same-actor streams recorded at the
    /// same cycle, matching engine processing order: pending pushes commit
    /// first, then a firing pops its input, then it touches memory.
    pub fn rank(&self) -> u8 {
        match self {
            TraceEvent::Push { .. } => 0,
            TraceEvent::Pop { .. } | TraceEvent::Drain { .. } => 1,
            TraceEvent::Mem(_) => 2,
            TraceEvent::Barrier { .. } => 3,
        }
    }
}

/// The recorded trace of one run: every synchronization operation and
/// every watched memory access, in execution order (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Core count of the machine that produced the trace.
    pub cores: usize,
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace for a `cores`-core machine.
    pub fn new(cores: usize) -> Self {
        Trace {
            cores,
            events: Vec::new(),
        }
    }

    /// Appends one event.
    pub fn record(&mut self, e: TraceEvent) {
        self.events.push(e);
    }
}

/// Post-run state the non-trace checkers need.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Core count.
    pub cores: usize,
    /// MLP window size per core.
    pub core_mlp: usize,
    /// Outstanding-miss slots still allocated per core at finish.
    pub outstanding: Vec<usize>,
    /// Per-class DRAM-boundary byte totals.
    pub traffic: TrafficStats,
    /// Lines the DRAM model fetched.
    pub dram_fetch_lines: u64,
    /// Lines written back to DRAM on LLC eviction.
    pub dram_writeback_lines: u64,
    /// Dirty lines accounted by the end-of-run flush.
    pub flushed_lines: u64,
}

impl RunContext {
    /// A context with no traffic and empty windows — the identity for
    /// every non-trace check. Useful for trace-only analysis in tests.
    pub fn empty(cores: usize) -> Self {
        RunContext {
            cores,
            core_mlp: usize::MAX,
            outstanding: vec![0; cores],
            traffic: TrafficStats::new(),
            dram_fetch_lines: 0,
            dram_writeback_lines: 0,
            flushed_lines: 0,
        }
    }
}

/// A pluggable post-run checker.
pub trait Sanitizer {
    /// Short name, for reporting which checker fired.
    fn name(&self) -> &'static str;
    /// Analyzes one run.
    fn check(&mut self, trace: &Trace, ctx: &RunContext) -> Vec<Violation>;
}

/// The built-in checker set.
pub fn default_checkers() -> Vec<Box<dyn Sanitizer>> {
    vec![
        Box::new(RaceDetector::default()),
        Box::new(QueueProtocol),
        Box::new(WindowCheck),
        Box::new(Accounting),
    ]
}

/// Runs every built-in checker over one run.
pub fn analyze(trace: &Trace, ctx: &RunContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for mut c in default_checkers() {
        out.extend(c.check(trace, ctx));
    }
    out
}

fn join_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn op_name(op: MemOp) -> &'static str {
    match op {
        MemOp::Load => "load",
        MemOp::Store => "store",
        MemOp::StreamStore => "stream-store",
        MemOp::Atomic => "atomic",
    }
}

/// Last-access state of one watched word: the most recent write and the
/// reads since it, each stamped with the issuer's epoch at access time.
/// Reads are kept ordered by actor index so that when a write races more
/// than one prior reader, the reported one is the same on every analysis
/// of the same trace (hash-map iteration order would make the diagnostic
/// nondeterministic).
#[derive(Default)]
struct WordState {
    write: Option<(usize, Actor, u64, u64, MemOp)>,
    reads: BTreeMap<usize, (Actor, u64, u64)>,
}

/// Vector-clock happens-before race detector over watched words.
///
/// Each actor (core, fetcher, compressor — see
/// [`Actor`]) carries a vector clock.
/// Synchronization edges:
///
/// * **queue push** — release: the channel clock of `(engine, queue)`
///   absorbs the pusher's clock, then the pusher's own epoch increments;
/// * **queue pop** — acquire: the popper absorbs the channel clock;
/// * **engine drain** — acquire of the whole engine clock by the waiter;
/// * **phase barrier** — every actor absorbs every clock;
/// * **atomics** — coherence-serialized RMWs acquire and release a
///   per-word lock clock, so chains of atomics order their surroundings.
///
/// Two accesses to the same word race when neither's epoch is covered by
/// the other's clock at access time. Two atomics never race with each
/// other (the coherence protocol serializes them); an atomic against a
/// plain access does.
pub struct RaceDetector {
    /// Report at most this many races (one per word) before going quiet.
    pub max_reports: usize,
}

impl Default for RaceDetector {
    fn default() -> Self {
        RaceDetector { max_reports: 16 }
    }
}

impl Sanitizer for RaceDetector {
    fn name(&self) -> &'static str {
        "race"
    }

    fn check(&mut self, trace: &Trace, _ctx: &RunContext) -> Vec<Violation> {
        let mut fold = RaceFold::new(trace.cores, self.max_reports);
        for ev in &trace.events {
            fold.step(ev);
        }
        fold.finish()
    }
}

/// The incremental state of the race detector: one [`RaceFold::step`] per
/// trace event, in execution order.
///
/// This is the single implementation behind both analysis paths — the
/// legacy [`RaceDetector::check`] folds a flat event vector through it,
/// and [`analyze_compressed`] folds decoded chunks through it — so the
/// two paths emit identical violations by construction.
pub struct RaceFold {
    n: usize,
    max_reports: usize,
    clocks: Vec<Vec<u64>>,
    channels: HashMap<(usize, QueueId), Vec<u64>>,
    locks: HashMap<u64, Vec<u64>>,
    words: HashMap<u64, WordState>,
    reported: HashSet<u64>,
    out: Vec<Violation>,
}

impl RaceFold {
    /// Fresh detector state for a `cores`-core machine, reporting at most
    /// `max_reports` races.
    pub fn new(cores: usize, max_reports: usize) -> Self {
        let n = Actor::count(cores.max(1));
        let mut clocks: Vec<Vec<u64>> = vec![vec![0; n]; n];
        for (i, c) in clocks.iter_mut().enumerate() {
            c[i] = 1;
        }
        RaceFold {
            n,
            max_reports,
            clocks,
            channels: HashMap::new(),
            locks: HashMap::new(),
            words: HashMap::new(),
            reported: HashSet::new(),
            out: Vec::new(),
        }
    }

    /// Advances the vector-clock state by one event.
    pub fn step(&mut self, ev: &TraceEvent) {
        let n = self.n;
        match *ev {
            TraceEvent::Push {
                actor, engine, q, ..
            } => {
                let a = actor.index();
                let ch = self
                    .channels
                    .entry((engine.index(), q))
                    .or_insert_with(|| vec![0; n]);
                join_into(ch, &self.clocks[a]);
                self.clocks[a][a] += 1;
            }
            TraceEvent::Pop {
                actor, engine, q, ..
            } => {
                if let Some(ch) = self.channels.get(&(engine.index(), q)) {
                    let ch = ch.clone();
                    join_into(&mut self.clocks[actor.index()], &ch);
                }
            }
            TraceEvent::Drain { actor, engine, .. } => {
                let e = engine.index();
                let ec = self.clocks[e].clone();
                join_into(&mut self.clocks[actor.index()], &ec);
                self.clocks[e][e] += 1;
            }
            TraceEvent::Barrier { .. } => {
                let mut merged = vec![0u64; n];
                for c in &self.clocks {
                    join_into(&mut merged, c);
                }
                for (i, c) in self.clocks.iter_mut().enumerate() {
                    c.copy_from_slice(&merged);
                    c[i] += 1;
                }
            }
            TraceEvent::Mem(r) => {
                let a = r.actor.index();
                let first = r.addr / WORD_BYTES;
                let last = (r.addr + r.bytes.max(1) as u64 - 1) / WORD_BYTES;
                if r.op == MemOp::Atomic {
                    for w in first..=last {
                        if let Some(l) = self.locks.get(&w) {
                            let l = l.clone();
                            join_into(&mut self.clocks[a], &l);
                        }
                    }
                }
                for w in first..=last {
                    let st = self.words.entry(w).or_default();
                    let mut race: Option<(Actor, u64, MemOp, Code)> = None;
                    if r.op.is_write() {
                        if let Some((b, bact, ep, cyc, bop)) = st.write {
                            let both_atomic = bop == MemOp::Atomic && r.op == MemOp::Atomic;
                            if b != a && !both_atomic && self.clocks[a][b] < ep {
                                race = Some((bact, cyc, bop, Code::WriteWriteRace));
                            }
                        }
                        if race.is_none() {
                            for (&b, &(bact, ep, cyc)) in &st.reads {
                                if b != a && self.clocks[a][b] < ep {
                                    race = Some((bact, cyc, MemOp::Load, Code::ReadWriteRace));
                                    break;
                                }
                            }
                        }
                        st.write = Some((a, r.actor, self.clocks[a][a], r.cycle, r.op));
                        st.reads.clear();
                    } else {
                        if let Some((b, bact, ep, cyc, bop)) = st.write {
                            if b != a && self.clocks[a][b] < ep {
                                race = Some((bact, cyc, bop, Code::ReadWriteRace));
                            }
                        }
                        st.reads.insert(a, (r.actor, self.clocks[a][a], r.cycle));
                    }
                    if let Some((bact, cyc, bop, code)) = race {
                        if self.reported.insert(w) && self.out.len() < self.max_reports {
                            let kind = match code {
                                Code::WriteWriteRace => "write/write",
                                _ => "read/write",
                            };
                            self.out.push(Violation::new(
                                code,
                                format!("{kind} race on {} word {:#x}", r.class, w * WORD_BYTES),
                                format!(
                                    "{} {} at cycle {} vs {} {} at cycle {} (addr {:#x})",
                                    r.actor,
                                    op_name(r.op),
                                    r.cycle,
                                    bact,
                                    op_name(bop),
                                    cyc,
                                    r.addr
                                ),
                            ));
                        }
                    }
                }
                if r.op == MemOp::Atomic {
                    for w in first..=last {
                        let l = self.locks.entry(w).or_insert_with(|| vec![0; n]);
                        join_into(l, &self.clocks[a]);
                    }
                    self.clocks[a][a] += 1;
                }
            }
        }
    }

    /// Takes the violations found so far.
    pub fn finish(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.out)
    }
}

/// Queue-protocol checker: occupancy never goes negative (S003) and every
/// queue is empty by the end of the run (S005).
pub struct QueueProtocol;

impl Sanitizer for QueueProtocol {
    fn name(&self) -> &'static str {
        "queue-protocol"
    }

    fn check(&mut self, trace: &Trace, _ctx: &RunContext) -> Vec<Violation> {
        let mut fold = QueueFold::new();
        for ev in &trace.events {
            fold.step(ev);
        }
        fold.finish()
    }
}

/// The incremental state of the queue-protocol checker — the single
/// implementation behind [`QueueProtocol::check`] and the chunked path,
/// like [`RaceFold`] is for races.
#[derive(Default)]
pub struct QueueFold {
    occ: HashMap<(Actor, QueueId), u64>,
    flagged: HashSet<(Actor, QueueId)>,
    out: Vec<Violation>,
}

impl QueueFold {
    /// Fresh state: all queues empty.
    pub fn new() -> Self {
        QueueFold::default()
    }

    /// Advances the occupancy state by one event.
    pub fn step(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Push {
                engine,
                q,
                quarters,
                ..
            } => {
                *self.occ.entry((engine, q)).or_default() += quarters as u64;
            }
            TraceEvent::Pop {
                actor,
                engine,
                q,
                quarters,
                cycle,
            } => {
                let o = self.occ.entry((engine, q)).or_default();
                if (quarters as u64) > *o {
                    if self.flagged.insert((engine, q)) {
                        self.out.push(Violation::new(
                            Code::PopBeforePush,
                            format!(
                                "pop of {quarters} quarter-words from queue q{q} of {engine} \
                                 which held only {o}"
                            ),
                            format!("{actor} pop at cycle {cycle} (queue q{q} of {engine})"),
                        ));
                    }
                    *o = 0;
                } else {
                    *o -= quarters as u64;
                }
            }
            _ => {}
        }
    }

    /// Current occupancy of one queue.
    fn occupancy(&self, key: (Actor, QueueId)) -> u64 {
        self.occ.get(&key).copied().unwrap_or(0)
    }

    /// Applies a whole chunk's net occupancy change to one queue without
    /// replaying its events. Only sound when the chunk's running balance
    /// never dips below the queue's current occupancy (see
    /// [`QueueDelta::need`]), which the caller has checked.
    fn apply_net(&mut self, key: (Actor, QueueId), net: i64) {
        let o = self.occ.entry(key).or_default();
        *o = o
            .checked_add_signed(net)
            .expect("summary fast path requires occupancy >= need");
    }

    /// Appends the end-of-run leak violations and takes everything found.
    pub fn finish(&mut self) -> Vec<Violation> {
        let mut leaks: Vec<_> = std::mem::take(&mut self.occ)
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        leaks.sort_by_key(|&((e, q), _)| (e, q));
        for ((engine, q), v) in leaks {
            self.out.push(Violation::new(
                Code::QueueSlotLeak,
                format!("queue q{q} of {engine} ends the run holding {v} quarter-word(s)"),
                format!("queue q{q} of {engine} at end of run"),
            ));
        }
        std::mem::take(&mut self.out)
    }
}

/// Miss-window checker: at finish, no core may hold more outstanding-miss
/// slots than its MLP window has (S006).
pub struct WindowCheck;

impl Sanitizer for WindowCheck {
    fn name(&self) -> &'static str {
        "window"
    }

    fn check(&mut self, _trace: &Trace, ctx: &RunContext) -> Vec<Violation> {
        let mut out = Vec::new();
        for (core, &n) in ctx.outstanding.iter().enumerate() {
            if n > ctx.core_mlp {
                out.push(Violation::new(
                    Code::WindowLeak,
                    format!(
                        "core {core} finished with {n} outstanding-miss slots allocated \
                         (window holds {})",
                        ctx.core_mlp
                    ),
                    format!("core {core} at end of run"),
                ));
            }
        }
        out
    }
}

/// Cache-line accounting checker: the DRAM model's line movements must
/// equal the per-class byte totals in both directions (S007), so every
/// fetched or written-back line is attributed to exactly one traffic
/// class.
pub struct Accounting;

impl Sanitizer for Accounting {
    fn name(&self) -> &'static str {
        "accounting"
    }

    fn check(&mut self, _trace: &Trace, ctx: &RunContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let read_bytes: u64 = DataClass::all()
            .iter()
            .map(|&c| ctx.traffic.read_bytes(c))
            .sum();
        let write_bytes: u64 = DataClass::all()
            .iter()
            .map(|&c| ctx.traffic.write_bytes(c))
            .sum();
        let fetched = ctx.dram_fetch_lines * LINE_BYTES;
        if fetched != read_bytes {
            out.push(Violation::new(
                Code::LineAccounting,
                format!(
                    "DRAM fetched {} line(s) = {fetched} bytes but classed read traffic \
                     totals {read_bytes} bytes",
                    ctx.dram_fetch_lines
                ),
                "DRAM read boundary at end of run".to_string(),
            ));
        }
        let written = (ctx.dram_writeback_lines + ctx.flushed_lines) * LINE_BYTES;
        if written != write_bytes {
            out.push(Violation::new(
                Code::LineAccounting,
                format!(
                    "DRAM absorbed {} writeback + {} flushed line(s) = {written} bytes but \
                     classed write traffic totals {write_bytes} bytes",
                    ctx.dram_writeback_lines, ctx.flushed_lines
                ),
                "DRAM write boundary at end of run".to_string(),
            ));
        }
        out
    }
}

/// Content-derived summary of one trace chunk: what the chunk-level
/// checkers need to decide whether they can apply a chunk's *effect*
/// without replaying its events. Depends only on the chunk payload, so it
/// is memoized by content hash alongside the decoded events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Content hash of the chunk this summarizes.
    pub hash: u64,
    /// Events in the chunk.
    pub events: u32,
    /// Per-queue occupancy effect, sorted by `(engine, queue)`.
    pub queues: Vec<(Actor, QueueId, QueueDelta)>,
}

/// A chunk's occupancy effect on one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDelta {
    /// Deepest dip of the chunk's running balance below zero: the minimum
    /// occupancy the queue must hold *entering* the chunk for no pop in
    /// it to underflow.
    pub need: u64,
    /// Net occupancy change across the whole chunk.
    pub net: i64,
}

/// Summarizes a decoded event block (content only — no entry state).
pub fn summarize_events(hash: u64, events: &[TraceEvent]) -> ChunkSummary {
    let mut queues: HashMap<(Actor, QueueId), (u64, i64)> = HashMap::new();
    for ev in events {
        match *ev {
            TraceEvent::Push {
                engine,
                q,
                quarters,
                ..
            } => {
                queues.entry((engine, q)).or_default().1 += quarters as i64;
            }
            TraceEvent::Pop {
                engine,
                q,
                quarters,
                ..
            } => {
                let (need, running) = queues.entry((engine, q)).or_default();
                *running -= quarters as i64;
                if *running < 0 {
                    *need = (*need).max(running.unsigned_abs());
                }
            }
            _ => {}
        }
    }
    let mut queues: Vec<_> = queues
        .into_iter()
        .map(|((e, q), (need, net))| (e, q, QueueDelta { need, net }))
        .collect();
    queues.sort_by_key(|&(e, q, _)| (e, q));
    ChunkSummary {
        hash,
        events: events.len() as u32,
        queues,
    }
}

/// One decoded (or memo-recalled) chunk handed to the chunk-level
/// checkers, in stream order.
pub struct DecodedChunk<'a> {
    /// Position in the trace stream.
    pub seq: u64,
    /// Content summary (shared across identical chunks).
    pub summary: &'a ChunkSummary,
    /// The decoded events.
    pub events: &'a [TraceEvent],
}

/// A checker driven chunk-by-chunk over the compressed trace.
///
/// The compressed analog of [`Sanitizer`]: `feed_chunk` sees every chunk
/// once, in order; `finish` sees the post-run context and emits whatever
/// the checker found. Checkers that can apply a summarized chunk without
/// walking its events report how often via [`ChunkSanitizer::fast_chunks`].
pub trait ChunkSanitizer {
    /// Short name, for reporting which checker fired.
    fn name(&self) -> &'static str;
    /// Observes one chunk of the trace, in stream order.
    fn feed_chunk(&mut self, chunk: &DecodedChunk<'_>);
    /// Finalizes against the post-run context.
    fn finish(&mut self, ctx: &RunContext) -> Vec<Violation>;
    /// Chunks this checker absorbed from their summary alone, without
    /// replaying events.
    fn fast_chunks(&self) -> usize {
        0
    }
}

/// Chunk-driven race detection: every chunk's events replay through the
/// shared [`RaceFold`]. Vector-clock state is entry-dependent, so chunks
/// cannot be skipped — the memoization win is upstream, where identical
/// chunks decode and summarize once.
pub struct RaceChunks {
    fold: RaceFold,
}

impl RaceChunks {
    /// Fresh detector for a `cores`-core machine.
    pub fn new(cores: usize) -> Self {
        RaceChunks {
            fold: RaceFold::new(cores, RaceDetector::default().max_reports),
        }
    }
}

impl ChunkSanitizer for RaceChunks {
    fn name(&self) -> &'static str {
        "race"
    }

    fn feed_chunk(&mut self, chunk: &DecodedChunk<'_>) {
        for ev in chunk.events {
            self.fold.step(ev);
        }
    }

    fn finish(&mut self, _ctx: &RunContext) -> Vec<Violation> {
        self.fold.finish()
    }
}

/// Chunk-driven queue-protocol checking with a summary fast path: when
/// every queue the chunk touches holds at least [`QueueDelta::need`]
/// quarter-words on entry, no pop in the chunk can underflow, so the
/// chunk provably adds no violation and its whole effect is the per-queue
/// [`QueueDelta::net`] — applied without replaying events. Otherwise the
/// chunk replays through the shared [`QueueFold`], preserving exact
/// messages, ordering, and underflow-clamp semantics.
#[derive(Default)]
pub struct QueueChunks {
    fold: QueueFold,
    fast: usize,
}

impl QueueChunks {
    /// Fresh state: all queues empty.
    pub fn new() -> Self {
        QueueChunks::default()
    }
}

impl ChunkSanitizer for QueueChunks {
    fn name(&self) -> &'static str {
        "queue-protocol"
    }

    fn feed_chunk(&mut self, chunk: &DecodedChunk<'_>) {
        let s = chunk.summary;
        let safe = s
            .queues
            .iter()
            .all(|&(e, q, d)| self.fold.occupancy((e, q)) >= d.need);
        if safe {
            for &(e, q, d) in &s.queues {
                self.fold.apply_net((e, q), d.net);
            }
            self.fast += 1;
        } else {
            for ev in chunk.events {
                self.fold.step(ev);
            }
        }
    }

    fn finish(&mut self, _ctx: &RunContext) -> Vec<Violation> {
        self.fold.finish()
    }

    fn fast_chunks(&self) -> usize {
        self.fast
    }
}

/// [`WindowCheck`] lifted to the chunk interface (context-only; ignores
/// the trace).
pub struct WindowChunks;

impl ChunkSanitizer for WindowChunks {
    fn name(&self) -> &'static str {
        "window"
    }

    fn feed_chunk(&mut self, _chunk: &DecodedChunk<'_>) {}

    fn finish(&mut self, ctx: &RunContext) -> Vec<Violation> {
        WindowCheck.check(&Trace::new(ctx.cores), ctx)
    }
}

/// [`Accounting`] lifted to the chunk interface (context-only; ignores
/// the trace).
pub struct AccountingChunks;

impl ChunkSanitizer for AccountingChunks {
    fn name(&self) -> &'static str {
        "accounting"
    }

    fn feed_chunk(&mut self, _chunk: &DecodedChunk<'_>) {}

    fn finish(&mut self, ctx: &RunContext) -> Vec<Violation> {
        Accounting.check(&Trace::new(ctx.cores), ctx)
    }
}

/// The built-in chunk-level checker set, in the same order as
/// [`default_checkers`] so violation ordering matches the legacy path.
pub fn default_chunk_checkers(cores: usize) -> Vec<Box<dyn ChunkSanitizer>> {
    vec![
        Box::new(RaceChunks::new(cores)),
        Box::new(QueueChunks::new()),
        Box::new(WindowChunks),
        Box::new(AccountingChunks),
    ]
}

/// Cap on decoded events held in the chunk memo cache. Steady-state
/// traces dominated by repeated chunks stay fully memoized; adversarial
/// all-distinct traces stop caching here instead of re-materializing the
/// raw trace.
const MEMO_EVENT_BUDGET: usize = 64 * 1024;

/// What the compressed analysis did, beyond its verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStats {
    /// Sealed chunks in the trace (a non-empty staged tail counts as one
    /// more).
    pub chunks: usize,
    /// Total events analyzed.
    pub events: usize,
    /// Distinct chunk contents decoded (memo misses).
    pub distinct_chunks: usize,
    /// Chunks recalled from the memo cache instead of decoded.
    pub memo_hits: usize,
    /// Chunks the queue checker absorbed from their summary alone.
    pub queue_fast_chunks: usize,
    /// S010 violations emitted.
    pub integrity_violations: usize,
}

/// Runs the chunk-level checker set over a compressed trace.
///
/// Emits the identical violation set as [`analyze`] on the decoded
/// events, preceded by any `S010` trace-integrity violations (out-of-
/// order or duplicated chunk sequence numbers, undecodable chunks). On an
/// intact trace the two paths agree exactly — the differential tests in
/// `tests/sanitizer_compressed.rs` hold this across the whole app×scheme
/// matrix.
pub fn analyze_compressed(trace: &CTrace, ctx: &RunContext) -> Vec<Violation> {
    analyze_compressed_stats(trace, ctx).0
}

/// [`analyze_compressed`] plus chunk/memoization statistics.
pub fn analyze_compressed_stats(
    trace: &CTrace,
    ctx: &RunContext,
) -> (Vec<Violation>, AnalyzeStats) {
    struct Memo {
        bytes_len: usize,
        events: Vec<TraceEvent>,
        summary: ChunkSummary,
    }
    let mut memo: HashMap<u64, Memo> = HashMap::new();
    let mut memo_events = 0usize;
    let mut stats = AnalyzeStats::default();
    let mut integrity = Vec::new();
    let mut checkers = default_chunk_checkers(trace.cores);

    let feed = |checkers: &mut Vec<Box<dyn ChunkSanitizer>>,
                stats: &mut AnalyzeStats,
                seq: u64,
                summary: &ChunkSummary,
                events: &[TraceEvent]| {
        stats.chunks += 1;
        stats.events += events.len();
        let chunk = DecodedChunk {
            seq,
            summary,
            events,
        };
        for c in checkers.iter_mut() {
            c.feed_chunk(&chunk);
        }
    };

    let mut scratch = Vec::new();
    for (i, chunk) in trace.chunks().iter().enumerate() {
        if chunk.seq != i as u64 {
            integrity.push(Violation::new(
                Code::TraceIntegrity,
                format!(
                    "trace chunk at position {i} carries sequence number {} \
                     (chunks reordered, duplicated, or lost)",
                    chunk.seq
                ),
                format!("compressed trace chunk {i}"),
            ));
        }
        if let Some(m) = memo.get(&chunk.hash) {
            if m.bytes_len == chunk.bytes.len() && m.summary.events == chunk.events {
                stats.memo_hits += 1;
                feed(&mut checkers, &mut stats, chunk.seq, &m.summary, &m.events);
                continue;
            }
        }
        scratch.clear();
        match crate::ctrace::decode_chunk(chunk, &mut scratch) {
            Ok(()) => {
                stats.distinct_chunks += 1;
                let summary = summarize_events(chunk.hash, &scratch);
                feed(&mut checkers, &mut stats, chunk.seq, &summary, &scratch);
                if memo_events + scratch.len() <= MEMO_EVENT_BUDGET {
                    memo_events += scratch.len();
                    memo.insert(
                        chunk.hash,
                        Memo {
                            bytes_len: chunk.bytes.len(),
                            events: scratch.clone(),
                            summary,
                        },
                    );
                }
            }
            Err(e) => {
                integrity.push(Violation::new(
                    Code::TraceIntegrity,
                    format!("trace chunk {i} failed to decode: {e}"),
                    format!("compressed trace chunk {i} ({} event(s))", chunk.events),
                ));
            }
        }
    }
    if !trace.pending().is_empty() {
        let tail = trace.pending();
        let summary = summarize_events(0, tail);
        feed(
            &mut checkers,
            &mut stats,
            trace.chunks().len() as u64,
            &summary,
            tail,
        );
    }

    stats.integrity_violations = integrity.len();
    let mut out = integrity;
    for c in checkers.iter_mut() {
        out.extend(c.finish(ctx));
        stats.queue_fast_chunks += c.fast_chunks();
    }
    (out, stats)
}

/// Everything a sanitized run produced beyond its timing report.
#[derive(Debug, Clone)]
pub struct SanitizeReport {
    /// Violations, built-in checkers first, then externally noted ones.
    pub violations: Vec<Violation>,
    /// The recorded compressed trace (kept so tests can decode, tamper,
    /// re-encode, and re-analyze).
    pub trace: CTrace,
    /// The post-run context the checkers saw.
    pub context: RunContext,
}

impl SanitizeReport {
    /// No violations at all.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the violations compiler-style (empty string when clean).
    pub fn render(&self) -> String {
        render(&self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(actor: Actor, addr: u64, bytes: u32, op: MemOp, cycle: u64) -> TraceEvent {
        TraceEvent::Mem(MemRecord {
            actor,
            addr,
            bytes,
            op,
            class: DataClass::Updates,
            cycle,
        })
    }

    fn races(trace: &Trace) -> Vec<Violation> {
        RaceDetector::default().check(trace, &RunContext::empty(trace.cores))
    }

    #[test]
    fn unordered_writes_race() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x100, 4, MemOp::Store, 10));
        t.record(rec(Actor::Compressor(1), 0x100, 4, MemOp::Store, 20));
        let v = races(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::WriteWriteRace);
        assert!(v[0].site.contains("compressor 1"), "{}", v[0].site);
        assert!(v[0].site.contains("core 0"), "{}", v[0].site);
        assert!(v[0].site.contains("cycle 20"), "{}", v[0].site);
        assert!(v[0].site.contains("0x100"), "{}", v[0].site);
    }

    #[test]
    fn queue_edge_orders_accesses_and_its_removal_races() {
        let push = TraceEvent::Push {
            actor: Actor::Core(0),
            engine: Actor::Fetcher(0),
            q: 0,
            quarters: 4,
            cycle: 11,
        };
        let pop = TraceEvent::Pop {
            actor: Actor::Fetcher(0),
            engine: Actor::Fetcher(0),
            q: 0,
            quarters: 4,
            cycle: 12,
        };
        let mut t = Trace::new(1);
        t.record(rec(Actor::Core(0), 0x200, 4, MemOp::Store, 10));
        t.record(push);
        t.record(pop);
        t.record(rec(Actor::Fetcher(0), 0x200, 4, MemOp::Store, 20));
        assert!(races(&t).is_empty());

        // Remove the pop: the producer→consumer edge is gone and the same
        // two stores now race.
        let mut broken = t.clone();
        broken
            .events
            .retain(|e| !matches!(e, TraceEvent::Pop { .. }));
        let v = races(&broken);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::WriteWriteRace);
    }

    #[test]
    fn barrier_orders_phases_and_its_removal_races() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x300, 4, MemOp::Store, 10));
        t.record(TraceEvent::Barrier { cycle: 15 });
        t.record(rec(Actor::Core(1), 0x300, 4, MemOp::Load, 20));
        assert!(races(&t).is_empty());

        let mut broken = t.clone();
        broken
            .events
            .retain(|e| !matches!(e, TraceEvent::Barrier { .. }));
        let v = races(&broken);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::ReadWriteRace);
    }

    #[test]
    fn drain_orders_engine_before_core() {
        let mut t = Trace::new(1);
        t.record(rec(Actor::Compressor(0), 0x400, 4, MemOp::StreamStore, 10));
        t.record(TraceEvent::Drain {
            actor: Actor::Core(0),
            engine: Actor::Compressor(0),
            cycle: 15,
        });
        t.record(rec(Actor::Core(0), 0x400, 4, MemOp::Load, 20));
        assert!(races(&t).is_empty());
    }

    #[test]
    fn atomics_do_not_race_each_other_but_do_race_plain_stores() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x500, 4, MemOp::Atomic, 10));
        t.record(rec(Actor::Core(1), 0x500, 4, MemOp::Atomic, 11));
        assert!(races(&t).is_empty());

        let mut t2 = Trace::new(2);
        t2.record(rec(Actor::Core(0), 0x500, 4, MemOp::Atomic, 10));
        t2.record(rec(Actor::Core(1), 0x500, 4, MemOp::Store, 11));
        let v = races(&t2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::WriteWriteRace);
    }

    #[test]
    fn atomic_chain_carries_ordering() {
        // a stores, a atomics the flag, b atomics the flag, b loads: the
        // lock clock on the flag word orders the store before the load.
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x600, 4, MemOp::Store, 10));
        t.record(rec(Actor::Core(0), 0x700, 4, MemOp::Atomic, 11));
        t.record(rec(Actor::Core(1), 0x700, 4, MemOp::Atomic, 12));
        t.record(rec(Actor::Core(1), 0x600, 4, MemOp::Load, 13));
        assert!(races(&t).is_empty());
    }

    #[test]
    fn multi_word_access_races_per_word() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x800, 16, MemOp::Store, 10));
        t.record(rec(Actor::Core(1), 0x804, 4, MemOp::Store, 11));
        let v = races(&t);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("0x804"), "{}", v[0].message);
    }

    #[test]
    fn pop_before_push_flagged() {
        let mut t = Trace::new(1);
        t.record(TraceEvent::Pop {
            actor: Actor::Fetcher(0),
            engine: Actor::Fetcher(0),
            q: 2,
            quarters: 4,
            cycle: 5,
        });
        let v = QueueProtocol.check(&t, &RunContext::empty(1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::PopBeforePush);
        assert!(v[0].message.contains("q2"), "{}", v[0].message);
    }

    #[test]
    fn leaked_queue_slots_flagged() {
        let mut t = Trace::new(1);
        t.record(TraceEvent::Push {
            actor: Actor::Core(0),
            engine: Actor::Compressor(0),
            q: 0,
            quarters: 8,
            cycle: 5,
        });
        t.record(TraceEvent::Pop {
            actor: Actor::Compressor(0),
            engine: Actor::Compressor(0),
            q: 0,
            quarters: 4,
            cycle: 6,
        });
        let v = QueueProtocol.check(&t, &RunContext::empty(1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::QueueSlotLeak);
        assert!(v[0].message.contains('4'), "{}", v[0].message);
    }

    #[test]
    fn balanced_queues_are_clean() {
        let mut t = Trace::new(1);
        for _ in 0..3 {
            t.record(TraceEvent::Push {
                actor: Actor::Core(0),
                engine: Actor::Fetcher(0),
                q: 1,
                quarters: 4,
                cycle: 0,
            });
            t.record(TraceEvent::Pop {
                actor: Actor::Fetcher(0),
                engine: Actor::Fetcher(0),
                q: 1,
                quarters: 4,
                cycle: 1,
            });
        }
        assert!(QueueProtocol.check(&t, &RunContext::empty(1)).is_empty());
    }

    #[test]
    fn window_oversubscription_flagged() {
        let mut ctx = RunContext::empty(2);
        ctx.core_mlp = 10;
        ctx.outstanding = vec![3, 11];
        let v = WindowCheck.check(&Trace::new(2), &ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::WindowLeak);
        assert!(v[0].message.contains("core 1"), "{}", v[0].message);
    }

    #[test]
    fn accounting_mismatch_flagged_per_direction() {
        let mut ctx = RunContext::empty(1);
        ctx.traffic.record_read(DataClass::Updates, 128);
        ctx.dram_fetch_lines = 2; // matches: 2 * 64 == 128
        assert!(Accounting.check(&Trace::new(1), &ctx).is_empty());

        ctx.dram_fetch_lines = 3; // one line fetched with no class
        let v = Accounting.check(&Trace::new(1), &ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::LineAccounting);

        let mut ctx2 = RunContext::empty(1);
        ctx2.traffic.record_write(DataClass::Frontier, 64);
        let v2 = Accounting.check(&Trace::new(1), &ctx2);
        assert_eq!(v2.len(), 1);
        assert!(v2[0].message.contains("write"), "{}", v2[0].message);
    }

    #[test]
    fn render_is_compiler_style() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x900, 4, MemOp::Store, 10));
        t.record(rec(Actor::Fetcher(1), 0x900, 4, MemOp::Store, 20));
        let out = render(&analyze(&t, &RunContext::empty(2)));
        assert!(out.contains("error[S001]"), "{out}");
        assert!(out.contains("  --> "), "{out}");
        assert!(out.contains("= help:"), "{out}");
        assert!(out.contains("1 sanitizer violation(s)"), "{out}");
    }

    #[test]
    fn codes_are_dense_and_unique() {
        let mut seen = HashSet::new();
        for c in Code::all() {
            assert!(seen.insert(c.as_str()));
            assert!(c.as_str().starts_with('S'));
            assert!(!c.summary().is_empty());
            assert!(!c.hint().is_empty());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn clean_trace_analyzes_silent() {
        let t = Trace::new(4);
        assert!(analyze(&t, &RunContext::empty(4)).is_empty());
    }

    fn assert_verdicts_match(trace: &Trace) {
        let ctx = RunContext::empty(trace.cores);
        let legacy = analyze(trace, &ctx);
        let ct = CTrace::from_trace(trace);
        let (compressed, stats) = analyze_compressed_stats(&ct, &ctx);
        assert_eq!(compressed.len(), legacy.len());
        for (a, b) in legacy.iter().zip(&compressed) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.message, b.message);
            assert_eq!(a.site, b.site);
        }
        assert_eq!(stats.events, trace.events.len());
        assert_eq!(stats.integrity_violations, 0);
    }

    #[test]
    fn compressed_analysis_matches_legacy_on_racy_traces() {
        let mut t = Trace::new(2);
        t.record(rec(Actor::Core(0), 0x100, 4, MemOp::Store, 10));
        t.record(rec(Actor::Compressor(1), 0x100, 4, MemOp::Store, 20));
        t.record(TraceEvent::Pop {
            actor: Actor::Fetcher(0),
            engine: Actor::Fetcher(0),
            q: 2,
            quarters: 4,
            cycle: 5,
        });
        t.record(TraceEvent::Push {
            actor: Actor::Core(0),
            engine: Actor::Compressor(0),
            q: 0,
            quarters: 8,
            cycle: 6,
        });
        assert_verdicts_match(&t);
    }

    #[test]
    fn compressed_analysis_matches_legacy_across_chunk_boundaries() {
        // A balanced push/pop loop long enough to span several chunks,
        // with a race planted near the end so state must survive sealing.
        let mut t = Trace::new(2);
        for i in 0..3 * crate::ctrace::CHUNK_EVENTS as u64 {
            t.record(TraceEvent::Push {
                actor: Actor::Core(0),
                engine: Actor::Fetcher(0),
                q: 1,
                quarters: 4,
                cycle: 2 * i,
            });
            t.record(TraceEvent::Pop {
                actor: Actor::Fetcher(0),
                engine: Actor::Fetcher(0),
                q: 1,
                quarters: 4,
                cycle: 2 * i + 1,
            });
        }
        t.record(rec(Actor::Core(0), 0xA00, 4, MemOp::Store, 1));
        t.record(rec(Actor::Core(1), 0xA00, 4, MemOp::Store, 2));
        assert_verdicts_match(&t);
    }

    #[test]
    fn repeated_chunks_are_memoized_and_queue_fast_forwarded() {
        // Identical balanced chunks: one decode, the rest memo hits, and
        // the queue checker should fast-forward all of them.
        let mut t = Trace::new(1);
        for i in 0..4 * crate::ctrace::CHUNK_EVENTS as u64 {
            let ev = if i % 2 == 0 {
                TraceEvent::Push {
                    actor: Actor::Core(0),
                    engine: Actor::Fetcher(0),
                    q: 0,
                    quarters: 4,
                    cycle: 7,
                }
            } else {
                TraceEvent::Pop {
                    actor: Actor::Fetcher(0),
                    engine: Actor::Fetcher(0),
                    q: 0,
                    quarters: 4,
                    cycle: 7,
                }
            };
            t.record(ev);
        }
        let ct = CTrace::from_trace(&t);
        assert_eq!(ct.chunks().len(), 4);
        let (v, stats) = analyze_compressed_stats(&ct, &RunContext::empty(1));
        assert!(v.is_empty(), "{}", render(&v));
        assert_eq!(stats.distinct_chunks, 1);
        assert_eq!(stats.memo_hits, 3);
        assert_eq!(stats.queue_fast_chunks, 4);
        assert_verdicts_match(&t);
    }

    #[test]
    fn reordered_chunks_report_s010() {
        let mut t = Trace::new(1);
        for i in 0..2 * crate::ctrace::CHUNK_EVENTS as u64 {
            t.record(TraceEvent::Barrier { cycle: i });
        }
        let mut ct = CTrace::from_trace(&t);
        ct.chunks_mut().swap(0, 1);
        let (v, stats) = analyze_compressed_stats(&ct, &RunContext::empty(1));
        assert!(v.iter().any(|x| x.code == Code::TraceIntegrity), "{v:?}");
        assert_eq!(stats.integrity_violations, 2);
    }

    #[test]
    fn duplicated_chunk_reports_s010() {
        let mut t = Trace::new(1);
        for i in 0..2 * crate::ctrace::CHUNK_EVENTS as u64 {
            t.record(TraceEvent::Barrier { cycle: i });
        }
        let mut ct = CTrace::from_trace(&t);
        let dup = ct.chunks()[0].clone();
        ct.chunks_mut().insert(1, dup);
        let v = analyze_compressed(&ct, &RunContext::empty(1));
        assert!(v.iter().any(|x| x.code == Code::TraceIntegrity), "{v:?}");
    }

    #[test]
    fn undecodable_chunk_reports_s010_not_panic() {
        let mut t = Trace::new(1);
        for i in 0..crate::ctrace::CHUNK_EVENTS as u64 {
            t.record(TraceEvent::Barrier { cycle: i });
        }
        let mut ct = CTrace::from_trace(&t);
        let b = &mut ct.chunks_mut()[0].bytes;
        let len = b.len();
        b.truncate(len / 2);
        let v = analyze_compressed(&ct, &RunContext::empty(1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, Code::TraceIntegrity);
        assert!(
            v[0].message.contains("failed to decode"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn queue_summary_fast_path_matches_replay_on_underflow() {
        // First chunk ends with a deficit the second chunk's pops deepen:
        // the second chunk must replay (need > entry occupancy) and flag
        // exactly what the legacy path flags.
        let mut t = Trace::new(1);
        t.record(TraceEvent::Push {
            actor: Actor::Core(0),
            engine: Actor::Fetcher(0),
            q: 0,
            quarters: 4,
            cycle: 1,
        });
        for i in 0..crate::ctrace::CHUNK_EVENTS as u64 {
            t.record(TraceEvent::Barrier { cycle: i });
        }
        t.record(TraceEvent::Pop {
            actor: Actor::Fetcher(0),
            engine: Actor::Fetcher(0),
            q: 0,
            quarters: 8,
            cycle: 99,
        });
        assert_verdicts_match(&t);
    }
}
