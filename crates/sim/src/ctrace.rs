//! Codec-compressed sanitizer traces.
//!
//! The SimSanitizer used to buffer its synchronization/memory trace as a
//! raw `Vec<TraceEvent>` — tens of bytes per event, fully materialized
//! for the whole run. This module replaces that buffer with a chunked,
//! columnar, codec-compressed layout ([`CTrace`]) that dogfoods the
//! repo's own `spzip_compress` codecs as the trace wire format:
//!
//! * events stream into a bounded raw staging buffer of
//!   [`CHUNK_EVENTS`] entries;
//! * a full buffer is *sealed* into a [`Chunk`]: events are split into
//!   per-field columns and each column is compressed with the codec that
//!   fits its shape — event tags, actor/engine/queue ids, quarter-word
//!   counts and packed access metadata through [`RleCodec`] (long runs of
//!   identical values), cycle stamps through the delta byte code
//!   ([`DeltaCodec`]; ZigZag deltas, so the non-monotonic cross-actor
//!   interleaving still compresses), and addresses through 64-bit
//!   bit-plane compression ([`BpcCodec`]);
//! * each column is one self-delimiting codec frame; a chunk's payload is
//!   the frames concatenated in a fixed order, stamped with a sequence
//!   number and an FNV-1a content hash.
//!
//! The content hash is the memoization key of the chunk-level analysis in
//! [`crate::sanitize::analyze_compressed`]: identical chunks (tight inner
//! loops replay the same push/pop/access patterns) are decoded and
//! summarized once, in the spirit of analyzing compressed traces by
//! processing repeated blocks once (Ang & Mathur's compressed-trace race
//! detection). The sequence numbers make reordered or duplicated chunks —
//! however they arise — detectable as `S010` trace-integrity violations
//! instead of silently corrupted verdicts.
//!
//! Decoding is strict: column lengths must match the tag column, tags and
//! packed metadata must be in range, and every byte of the payload must
//! be consumed. A [`CTrace`] can always be lowered back to the legacy
//! in-memory [`Trace`] ([`CTrace::to_trace`]), which the differential
//! tests keep as the analysis oracle.

use crate::sanitize::{Trace, TraceEvent};
use spzip_compress::bpc::BpcCodec;
use spzip_compress::delta::DeltaCodec;
use spzip_compress::rle::RleCodec;
use spzip_compress::{Codec, DecodeError, ElemWidth};
use spzip_mem::sanitize::{Actor, MemRecord};
use spzip_mem::{DataClass, MemOp};

/// Version of the compressed-trace wire format and its chunk-level
/// analysis, bumped whenever the column layout, the column codecs, the
/// hash, or the summarization semantics change. Folded into the bench
/// driver's cache fingerprint (sanitized verdicts depend on it) next to
/// `CODEC_VERSION`.
pub const SANITIZE_TRACE_VERSION: u32 = 1;

/// Events per chunk: the bound on raw staging. 1024 events keep the
/// staging buffer around one LLC way in size while giving the column
/// codecs runs long enough to compress well.
pub const CHUNK_EVENTS: usize = 1024;

/// In-memory size of one raw trace event — the per-event footprint of
/// the legacy `Vec<TraceEvent>` buffer that compressed residency is
/// measured against.
pub const RAW_EVENT_BYTES: usize = std::mem::size_of::<TraceEvent>();

/// One sealed chunk: a columnar compressed block of up to
/// [`CHUNK_EVENTS`] events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the trace stream, assigned at seal time.
    /// [`crate::sanitize::analyze_compressed`] checks the sequence is
    /// dense and in order (S010 otherwise).
    pub seq: u64,
    /// Number of events encoded in the payload.
    pub events: u32,
    /// Concatenated self-delimiting column frames (see module docs).
    pub bytes: Vec<u8>,
    /// FNV-1a hash of `bytes`: the content-only memoization key for
    /// chunk-level analysis. Equal event sequences encode to equal bytes
    /// (every column codec is deterministic), so equal hashes.
    pub hash: u64,
}

/// Event tags, the first column of every chunk.
const TAG_MEM: u64 = 0;
const TAG_PUSH: u64 = 1;
const TAG_POP: u64 = 2;
const TAG_DRAIN: u64 = 3;
const TAG_BARRIER: u64 = 4;

fn op_index(op: MemOp) -> u64 {
    match op {
        MemOp::Load => 0,
        MemOp::Store => 1,
        MemOp::StreamStore => 2,
        MemOp::Atomic => 3,
    }
}

fn op_from_index(idx: u64) -> Result<MemOp, DecodeError> {
    Ok(match idx {
        0 => MemOp::Load,
        1 => MemOp::Store,
        2 => MemOp::StreamStore,
        3 => MemOp::Atomic,
        other => return Err(DecodeError::new(format!("invalid mem-op index {other}"))),
    })
}

fn class_index(class: DataClass) -> u64 {
    match class {
        DataClass::AdjacencyMatrix => 0,
        DataClass::SourceVertex => 1,
        DataClass::DestinationVertex => 2,
        DataClass::Updates => 3,
        DataClass::Frontier => 4,
        DataClass::Other => 5,
    }
}

fn class_from_index(idx: u64) -> Result<DataClass, DecodeError> {
    Ok(match idx {
        0 => DataClass::AdjacencyMatrix,
        1 => DataClass::SourceVertex,
        2 => DataClass::DestinationVertex,
        3 => DataClass::Updates,
        4 => DataClass::Frontier,
        5 => DataClass::Other,
        other => return Err(DecodeError::new(format!("invalid class index {other}"))),
    })
}

/// Packs a memory record's size/op/class into one small integer: runs of
/// identical access shapes (the common case — same-width loads in a
/// scan) collapse under RLE.
fn pack_meta(r: &MemRecord) -> u64 {
    ((r.bytes as u64) << 8) | (op_index(r.op) << 4) | class_index(r.class)
}

fn unpack_meta(meta: u64) -> Result<(u32, MemOp, DataClass), DecodeError> {
    let bytes = meta >> 8;
    if bytes > u32::MAX as u64 {
        return Err(DecodeError::new("access size exceeds u32"));
    }
    let op = op_from_index((meta >> 4) & 0xF)?;
    let class = class_from_index(meta & 0xF)?;
    Ok((bytes as u32, op, class))
}

/// FNV-1a over a byte slice (the same hash family the bench cache keys
/// use; trace chunks only need a stable, well-mixed content key).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Column staging reused across chunk seals, so steady-state recording
/// allocates nothing: each `Vec` grows to its high-water mark (bounded by
/// [`CHUNK_EVENTS`] elements) and is cleared per seal.
#[derive(Debug, Default)]
struct ColumnScratch {
    tags: Vec<u64>,
    cycles: Vec<u64>,
    actors: Vec<u64>,
    engines: Vec<u64>,
    qs: Vec<u64>,
    quarters: Vec<u64>,
    addrs: Vec<u64>,
    metas: Vec<u64>,
}

impl ColumnScratch {
    fn clear(&mut self) {
        self.tags.clear();
        self.cycles.clear();
        self.actors.clear();
        self.engines.clear();
        self.qs.clear();
        self.quarters.clear();
        self.addrs.clear();
        self.metas.clear();
    }

    fn capacity_bytes(&self) -> usize {
        8 * (self.tags.capacity()
            + self.cycles.capacity()
            + self.actors.capacity()
            + self.engines.capacity()
            + self.qs.capacity()
            + self.quarters.capacity()
            + self.addrs.capacity()
            + self.metas.capacity())
    }
}

/// The chunked, codec-compressed trace of one sanitized run — the
/// replacement for the legacy raw `Vec<TraceEvent>` buffer (which
/// survives as [`Trace`], the differential oracle).
///
/// Recording streams events into a bounded staging buffer and seals full
/// buffers into compressed [`Chunk`]s, so raw-trace residency never
/// exceeds [`CHUNK_EVENTS`] events regardless of run length.
#[derive(Debug)]
pub struct CTrace {
    /// Core count of the machine that produced the trace (mirrors
    /// [`Trace::cores`]).
    pub cores: usize,
    chunks: Vec<Chunk>,
    pending: Vec<TraceEvent>,
    total_events: usize,
    compressed_bytes: usize,
    scratch: ColumnScratch,
}

impl Clone for CTrace {
    fn clone(&self) -> Self {
        CTrace {
            cores: self.cores,
            chunks: self.chunks.clone(),
            pending: self.pending.clone(),
            total_events: self.total_events,
            compressed_bytes: self.compressed_bytes,
            scratch: ColumnScratch::default(),
        }
    }
}

impl CTrace {
    /// An empty compressed trace for a `cores`-core machine.
    pub fn new(cores: usize) -> Self {
        CTrace {
            cores,
            chunks: Vec::new(),
            pending: Vec::with_capacity(CHUNK_EVENTS),
            total_events: 0,
            compressed_bytes: 0,
            scratch: ColumnScratch::default(),
        }
    }

    /// Appends one event, sealing a chunk when the staging buffer fills.
    pub fn record(&mut self, e: TraceEvent) {
        self.pending.push(e);
        self.total_events += 1;
        if self.pending.len() >= CHUNK_EVENTS {
            self.seal();
        }
    }

    /// Appends a batch of events (the machine's per-quantum engine-log
    /// merges arrive as batches).
    pub fn record_all(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        for e in events {
            self.record(e);
        }
    }

    /// Seals whatever is staged into a compressed chunk. Called
    /// automatically when staging fills and at the end of a run; a no-op
    /// on an empty buffer.
    pub fn seal(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let chunk = encode_chunk(self.chunks.len() as u64, &self.pending, &mut self.scratch);
        self.compressed_bytes += chunk.bytes.len();
        self.chunks.push(chunk);
        self.pending.clear();
    }

    /// Total events recorded (sealed plus staged).
    pub fn len(&self) -> usize {
        self.total_events
    }

    /// Whether no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_events == 0
    }

    /// The sealed chunks, in stream order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Mutable chunk access, for corruption-injection tests (reorder,
    /// duplicate, truncate — the sanitizer must *report* all of these).
    pub fn chunks_mut(&mut self) -> &mut Vec<Chunk> {
        &mut self.chunks
    }

    /// Events still staged, not yet sealed into a chunk.
    pub fn pending(&self) -> &[TraceEvent] {
        &self.pending
    }

    /// Total compressed payload bytes across sealed chunks.
    pub fn compressed_bytes(&self) -> usize {
        self.compressed_bytes
    }

    /// In-memory footprint the legacy raw `Vec<TraceEvent>` would need
    /// for the same trace.
    pub fn raw_bytes(&self) -> usize {
        self.total_events * RAW_EVENT_BYTES
    }

    /// Peak trace-side residency of this representation: compressed
    /// payloads plus the bounded staging buffers (raw event staging and
    /// column scratch). This is what replaces the legacy raw footprint.
    pub fn peak_residency_bytes(&self) -> usize {
        self.compressed_bytes
            + self.pending.capacity().max(CHUNK_EVENTS) * RAW_EVENT_BYTES
            + self.scratch.capacity_bytes()
    }

    /// Decodes the whole trace back to a flat event vector (sealed chunks
    /// in order, then staged events).
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] in any chunk.
    pub fn decode_all(&self) -> Result<Vec<TraceEvent>, DecodeError> {
        let mut out = Vec::with_capacity(self.total_events);
        for chunk in &self.chunks {
            decode_chunk(chunk, &mut out)?;
        }
        out.extend_from_slice(&self.pending);
        Ok(out)
    }

    /// Lowers to the legacy in-memory [`Trace`] — the analysis oracle the
    /// differential tests compare [`crate::sanitize::analyze_compressed`]
    /// against.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] in any chunk.
    pub fn to_trace(&self) -> Result<Trace, DecodeError> {
        Ok(Trace {
            cores: self.cores,
            events: self.decode_all()?,
        })
    }

    /// Compresses an explicit event sequence (tampered-trace tests
    /// re-encode a modified event list through the same wire format).
    /// Every staged buffer is sealed, so `len()` events land in chunks.
    pub fn from_events(cores: usize, events: &[TraceEvent]) -> CTrace {
        let mut t = CTrace::new(cores);
        t.record_all(events.iter().copied());
        t.seal();
        t
    }

    /// Compresses a legacy [`Trace`].
    pub fn from_trace(trace: &Trace) -> CTrace {
        CTrace::from_events(trace.cores, &trace.events)
    }
}

/// Encodes one chunk: columnar split, per-column codec, fixed frame
/// order, content hash.
fn encode_chunk(seq: u64, events: &[TraceEvent], scratch: &mut ColumnScratch) -> Chunk {
    debug_assert!(!events.is_empty() && events.len() <= CHUNK_EVENTS);
    scratch.clear();
    for ev in events {
        scratch.tags.push(match ev {
            TraceEvent::Mem(_) => TAG_MEM,
            TraceEvent::Push { .. } => TAG_PUSH,
            TraceEvent::Pop { .. } => TAG_POP,
            TraceEvent::Drain { .. } => TAG_DRAIN,
            TraceEvent::Barrier { .. } => TAG_BARRIER,
        });
        scratch.cycles.push(ev.cycle());
        match *ev {
            TraceEvent::Mem(r) => {
                scratch.actors.push(r.actor.index() as u64);
                scratch.addrs.push(r.addr);
                scratch.metas.push(pack_meta(&r));
            }
            TraceEvent::Push {
                actor,
                engine,
                q,
                quarters,
                ..
            }
            | TraceEvent::Pop {
                actor,
                engine,
                q,
                quarters,
                ..
            } => {
                scratch.actors.push(actor.index() as u64);
                scratch.engines.push(engine.index() as u64);
                scratch.qs.push(q as u64);
                scratch.quarters.push(quarters as u64);
            }
            TraceEvent::Drain { actor, engine, .. } => {
                scratch.actors.push(actor.index() as u64);
                scratch.engines.push(engine.index() as u64);
            }
            TraceEvent::Barrier { .. } => {}
        }
    }
    let rle = RleCodec::new();
    let delta = DeltaCodec::new();
    let bpc = BpcCodec::new(ElemWidth::W64);
    let mut bytes = Vec::new();
    // Fixed column order; empty columns are skipped (the decoder derives
    // every column's length from the tag column, so it knows what to
    // expect).
    rle.compress(&scratch.tags, &mut bytes);
    delta.compress(&scratch.cycles, &mut bytes);
    for col in [
        &scratch.actors,
        &scratch.engines,
        &scratch.qs,
        &scratch.quarters,
    ] {
        if !col.is_empty() {
            rle.compress(col, &mut bytes);
        }
    }
    if !scratch.addrs.is_empty() {
        bpc.compress(&scratch.addrs, &mut bytes);
    }
    if !scratch.metas.is_empty() {
        rle.compress(&scratch.metas, &mut bytes);
    }
    let hash = fnv1a(&bytes);
    Chunk {
        seq,
        events: events.len() as u32,
        bytes,
        hash,
    }
}

fn decode_column(
    codec: &dyn Codec,
    what: &str,
    expect: usize,
    bytes: &[u8],
    pos: &mut usize,
    out: &mut Vec<u64>,
) -> Result<(), DecodeError> {
    out.clear();
    if expect == 0 {
        return Ok(());
    }
    codec
        .decode_frame(bytes, pos, out)
        .map_err(|e| DecodeError::new(format!("{what} column: {e}")))?;
    if out.len() != expect {
        return Err(DecodeError::new(format!(
            "{what} column decoded {} values, expected {expect}",
            out.len()
        )));
    }
    Ok(())
}

/// Decodes one chunk's events, appending them to `out`.
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed column: codec-level frame
/// corruption, a column length disagreeing with the tag column, an
/// out-of-range tag/op/class, an oversized queue id or quarter count, or
/// trailing payload bytes.
pub fn decode_chunk(chunk: &Chunk, out: &mut Vec<TraceEvent>) -> Result<(), DecodeError> {
    let rle = RleCodec::new();
    let delta = DeltaCodec::new();
    let bpc = BpcCodec::new(ElemWidth::W64);
    let bytes = &chunk.bytes;
    let mut pos = 0;

    let mut tags = Vec::new();
    rle.decode_frame(bytes, &mut pos, &mut tags)
        .map_err(|e| DecodeError::new(format!("tag column: {e}")))?;
    if tags.len() != chunk.events as usize {
        return Err(DecodeError::new(format!(
            "tag column holds {} events, chunk header says {}",
            tags.len(),
            chunk.events
        )));
    }
    let mut n_actor = 0usize;
    let mut n_engine = 0usize;
    let mut n_queue = 0usize;
    let mut n_mem = 0usize;
    for &t in &tags {
        match t {
            TAG_MEM => {
                n_actor += 1;
                n_mem += 1;
            }
            TAG_PUSH | TAG_POP => {
                n_actor += 1;
                n_engine += 1;
                n_queue += 1;
            }
            TAG_DRAIN => {
                n_actor += 1;
                n_engine += 1;
            }
            TAG_BARRIER => {}
            other => return Err(DecodeError::new(format!("invalid event tag {other}"))),
        }
    }

    let mut cycles = Vec::new();
    decode_column(&delta, "cycle", tags.len(), bytes, &mut pos, &mut cycles)?;
    let mut actors = Vec::new();
    decode_column(&rle, "actor", n_actor, bytes, &mut pos, &mut actors)?;
    let mut engines = Vec::new();
    decode_column(&rle, "engine", n_engine, bytes, &mut pos, &mut engines)?;
    let mut qs = Vec::new();
    decode_column(&rle, "queue", n_queue, bytes, &mut pos, &mut qs)?;
    let mut quarters = Vec::new();
    decode_column(&rle, "quarters", n_queue, bytes, &mut pos, &mut quarters)?;
    let mut addrs = Vec::new();
    decode_column(&bpc, "address", n_mem, bytes, &mut pos, &mut addrs)?;
    let mut metas = Vec::new();
    decode_column(&rle, "meta", n_mem, bytes, &mut pos, &mut metas)?;
    if pos != bytes.len() {
        return Err(DecodeError::new("trailing bytes after chunk columns"));
    }

    let actor_at = |i: usize| -> Result<Actor, DecodeError> {
        let idx = actors[i];
        if idx > usize::MAX as u64 {
            return Err(DecodeError::new("actor index overflows usize"));
        }
        Ok(Actor::from_index(idx as usize))
    };
    let (mut ai, mut ei, mut qi, mut mi) = (0usize, 0usize, 0usize, 0usize);
    out.reserve(tags.len());
    for (i, &t) in tags.iter().enumerate() {
        let cycle = cycles[i];
        match t {
            TAG_MEM => {
                let (sz, op, class) = unpack_meta(metas[mi])?;
                out.push(TraceEvent::Mem(MemRecord {
                    actor: actor_at(ai)?,
                    addr: addrs[mi],
                    bytes: sz,
                    op,
                    class,
                    cycle,
                }));
                ai += 1;
                mi += 1;
            }
            TAG_PUSH | TAG_POP => {
                let q = qs[qi];
                if q > u8::MAX as u64 {
                    return Err(DecodeError::new(format!("queue id {q} exceeds u8")));
                }
                let qw = quarters[qi];
                if qw > u32::MAX as u64 {
                    return Err(DecodeError::new(format!("quarter count {qw} exceeds u32")));
                }
                let actor = actor_at(ai)?;
                let engine_idx = engines[ei];
                if engine_idx > usize::MAX as u64 {
                    return Err(DecodeError::new("engine index overflows usize"));
                }
                let engine = Actor::from_index(engine_idx as usize);
                let (q, quarters) = (q as u8, qw as u32);
                out.push(if t == TAG_PUSH {
                    TraceEvent::Push {
                        actor,
                        engine,
                        q,
                        quarters,
                        cycle,
                    }
                } else {
                    TraceEvent::Pop {
                        actor,
                        engine,
                        q,
                        quarters,
                        cycle,
                    }
                });
                ai += 1;
                ei += 1;
                qi += 1;
            }
            TAG_DRAIN => {
                let actor = actor_at(ai)?;
                let engine_idx = engines[ei];
                if engine_idx > usize::MAX as u64 {
                    return Err(DecodeError::new("engine index overflows usize"));
                }
                out.push(TraceEvent::Drain {
                    actor,
                    engine: Actor::from_index(engine_idx as usize),
                    cycle,
                });
                ai += 1;
                ei += 1;
            }
            _ => {
                out.push(TraceEvent::Barrier { cycle });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spzip_core::QueueId;

    fn mem(actor: Actor, addr: u64, bytes: u32, op: MemOp, cycle: u64) -> TraceEvent {
        TraceEvent::Mem(MemRecord {
            actor,
            addr,
            bytes,
            op,
            class: DataClass::Updates,
            cycle,
        })
    }

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        for i in 0..n as u64 {
            let q = (i % 3) as QueueId;
            match i % 5 {
                0 => evs.push(TraceEvent::Push {
                    actor: Actor::Core((i % 4) as usize),
                    engine: Actor::Fetcher((i % 4) as usize),
                    q,
                    quarters: 4,
                    cycle: i * 7,
                }),
                1 => evs.push(TraceEvent::Pop {
                    actor: Actor::Fetcher((i % 4) as usize),
                    engine: Actor::Fetcher((i % 4) as usize),
                    q,
                    quarters: 4,
                    cycle: i * 7 + 1,
                }),
                2 => evs.push(mem(
                    Actor::Fetcher((i % 4) as usize),
                    0x1000 + i * 4,
                    4,
                    MemOp::Load,
                    i * 7 - 3,
                )),
                3 => evs.push(TraceEvent::Drain {
                    actor: Actor::Core((i % 4) as usize),
                    engine: Actor::Compressor((i % 4) as usize),
                    cycle: i * 7,
                }),
                _ => evs.push(TraceEvent::Barrier { cycle: i * 7 }),
            }
        }
        evs
    }

    #[test]
    fn roundtrip_preserves_events_exactly() {
        for n in [
            1,
            2,
            31,
            CHUNK_EVENTS - 1,
            CHUNK_EVENTS,
            3 * CHUNK_EVENTS + 5,
        ] {
            let events = sample_events(n);
            let t = CTrace::from_events(4, &events);
            assert_eq!(t.len(), n);
            assert_eq!(t.decode_all().unwrap(), events, "n={n}");
        }
    }

    #[test]
    fn record_seals_at_chunk_boundaries_with_bounded_staging() {
        let mut t = CTrace::new(2);
        for e in sample_events(2 * CHUNK_EVENTS + 7) {
            t.record(e);
            assert!(t.pending().len() < CHUNK_EVENTS, "staging stays bounded");
        }
        assert_eq!(t.chunks().len(), 2);
        assert_eq!(t.pending().len(), 7);
        t.seal();
        assert_eq!(t.chunks().len(), 3);
        assert!(t.pending().is_empty());
        for (i, c) in t.chunks().iter().enumerate() {
            assert_eq!(c.seq, i as u64);
        }
    }

    #[test]
    fn identical_chunks_hash_identically_and_distinct_ones_differ() {
        let events = sample_events(CHUNK_EVENTS);
        let a = CTrace::from_events(4, &events);
        let b = CTrace::from_events(4, &events);
        assert_eq!(a.chunks()[0].hash, b.chunks()[0].hash);
        assert_eq!(a.chunks()[0].bytes, b.chunks()[0].bytes);

        let mut other = events.clone();
        other[17] = TraceEvent::Barrier { cycle: 999_999 };
        let c = CTrace::from_events(4, &other);
        assert_ne!(a.chunks()[0].hash, c.chunks()[0].hash);
    }

    #[test]
    fn repeated_identical_blocks_produce_equal_hashes() {
        // A tight loop: the same 1024-event block recorded three times
        // yields three chunks with one distinct hash — the memoization
        // surface of the chunk-level analysis.
        let block = sample_events(CHUNK_EVENTS);
        let mut t = CTrace::new(4);
        for _ in 0..3 {
            t.record_all(block.iter().copied());
        }
        t.seal();
        assert_eq!(t.chunks().len(), 3);
        assert_eq!(t.chunks()[0].hash, t.chunks()[1].hash);
        assert_eq!(t.chunks()[1].hash, t.chunks()[2].hash);
    }

    #[test]
    fn compression_beats_raw_on_realistic_shapes() {
        let events = sample_events(8 * CHUNK_EVENTS);
        let t = CTrace::from_events(4, &events);
        let raw = t.raw_bytes();
        let compressed = t.compressed_bytes();
        assert!(
            compressed * 4 <= raw,
            "compressed {compressed} bytes vs raw {raw} bytes is under 4x"
        );
    }

    #[test]
    fn to_trace_matches_legacy_representation() {
        let events = sample_events(CHUNK_EVENTS + 100);
        let t = CTrace::from_events(3, &events);
        let legacy = t.to_trace().unwrap();
        assert_eq!(legacy.cores, 3);
        assert_eq!(legacy.events, events);
    }

    #[test]
    fn corrupted_payload_is_a_decode_error_not_a_panic() {
        let events = sample_events(CHUNK_EVENTS);
        let mut t = CTrace::from_events(4, &events);
        let chunk = &mut t.chunks_mut()[0];
        // Flip a byte in every region of the payload.
        let len = chunk.bytes.len();
        for i in [0, len / 3, len / 2, len - 1] {
            let mut broken = t.clone();
            broken.chunks_mut()[0].bytes[i] ^= 0xA5;
            let mut out = Vec::new();
            // Either a decode error or (rarely) a valid reinterpretation
            // — never a panic. A changed payload that still decodes must
            // not decode to the original events *and* keep its hash.
            match decode_chunk(&broken.chunks()[0], &mut out) {
                Ok(()) => assert_ne!(fnv1a(&broken.chunks()[0].bytes), t.chunks()[0].hash),
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
        // Truncation must error.
        let mut short = t.clone();
        let b = &mut short.chunks_mut()[0].bytes;
        b.truncate(b.len() / 2);
        let mut out = Vec::new();
        assert!(decode_chunk(&short.chunks()[0], &mut out).is_err());
    }

    #[test]
    fn event_count_mismatch_is_detected() {
        let events = sample_events(64);
        let mut t = CTrace::from_events(4, &events);
        t.chunks_mut()[0].events += 1;
        let mut out = Vec::new();
        let err = decode_chunk(&t.chunks()[0], &mut out).unwrap_err();
        assert!(err.to_string().contains("chunk header"), "{err}");
    }

    #[test]
    fn meta_packing_roundtrips_every_op_and_class() {
        for op in [MemOp::Load, MemOp::Store, MemOp::StreamStore, MemOp::Atomic] {
            for class in DataClass::all() {
                let r = MemRecord {
                    actor: Actor::Core(0),
                    addr: 0,
                    bytes: 4096,
                    op,
                    class,
                    cycle: 0,
                };
                let (bytes, op2, class2) = unpack_meta(pack_meta(&r)).unwrap();
                assert_eq!((bytes, op2, class2), (4096, op, class));
            }
        }
        assert!(unpack_meta(0xF << 4).is_err(), "op index 15 is invalid");
        assert!(unpack_meta(0xF).is_err(), "class index 15 is invalid");
    }

    #[test]
    fn residency_is_dominated_by_compressed_bytes_plus_bounded_scratch() {
        let events = sample_events(20 * CHUNK_EVENTS);
        let mut t = CTrace::new(4);
        t.record_all(events.iter().copied());
        t.seal();
        let residency = t.peak_residency_bytes();
        assert!(
            residency < t.raw_bytes() / 2,
            "{residency} vs {}",
            t.raw_bytes()
        );
        assert!(residency >= t.compressed_bytes());
    }
}
