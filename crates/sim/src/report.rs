//! Run reports: the quantities the paper's figures plot.

use spzip_mem::cache::CacheStats;
use spzip_mem::stats::TrafficStats;
use spzip_mem::DataClass;
use std::fmt;

/// Results of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// DRAM-boundary traffic by data class.
    pub traffic: TrafficStats,
    /// LLC hit/miss counters.
    pub llc: CacheStats,
    /// Fraction of DRAM channel-cycles busy.
    pub dram_utilization: f64,
    /// Total fetcher firings across cores.
    pub fetcher_fired: u64,
    /// Total compressor firings across cores.
    pub compressor_fired: u64,
    /// Cycles cores spent blocked (queue waits + window-full waits).
    pub core_stall_cycles: u64,
    /// Events retired across cores.
    pub retired_events: u64,
}

/// The leading line of every serialized report; bumped whenever the field
/// set changes so stale cache entries are rejected instead of misparsed.
pub const REPORT_FORMAT: &str = "spzip-report-v1";

/// Sentinel returned by [`RunReport::speedup_over`] and
/// [`RunReport::traffic_vs`] when the baseline contributes a zero
/// denominator (zero cycles, zero traffic): the ratio is undefined, and
/// NaN poisons any downstream arithmetic instead of a clamped division
/// silently producing a plausible-looking number. Callers that render
/// tables test with `f64::is_nan` and print `n/a`.
pub const UNDEFINED_RATIO: f64 = f64::NAN;

impl RunReport {
    /// Speedup of this run over `baseline` (ratio of cycle counts).
    ///
    /// Returns [`UNDEFINED_RATIO`] when `baseline` simulated zero
    /// cycles — a ratio over an empty baseline is meaningless. Warns on
    /// stderr when `baseline` retired zero events, since its cycle count
    /// is then an artifact of an empty run even when nonzero.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if baseline.retired_events == 0 {
            eprintln!(
                "warning: speedup_over: baseline retired zero events \
                 ({} cycles); the reported speedup is not meaningful",
                baseline.cycles
            );
        }
        if baseline.cycles == 0 {
            return UNDEFINED_RATIO;
        }
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// This run's traffic as a fraction of `baseline`'s.
    ///
    /// Returns [`UNDEFINED_RATIO`] when `baseline` moved zero bytes —
    /// the denominator is zero and the ratio undefined. Warns on stderr
    /// when `baseline` retired zero events (see
    /// [`RunReport::speedup_over`]).
    pub fn traffic_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.retired_events == 0 {
            eprintln!(
                "warning: traffic_vs: baseline retired zero events \
                 ({} B of traffic); the reported ratio is not meaningful",
                baseline.traffic.total_bytes()
            );
        }
        let base_bytes = baseline.traffic.total_bytes();
        if base_bytes == 0 {
            return UNDEFINED_RATIO;
        }
        self.traffic.total_bytes() as f64 / base_bytes as f64
    }

    /// Per-class traffic normalized to `denominator` bytes.
    pub fn breakdown(&self, denominator: u64) -> [f64; 6] {
        self.traffic.breakdown_normalized(denominator)
    }

    /// Serializes to `key value` lines (one per field, stable order),
    /// headed by [`REPORT_FORMAT`]. Floats are rendered with `{:?}`,
    /// whose shortest-roundtrip output parses back bit-exactly, so
    /// serialization is lossless and byte-stable across runs.
    pub fn to_kv(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(REPORT_FORMAT);
        out.push('\n');
        let mut line = |k: &str, v: String| {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v);
            out.push('\n');
        };
        line("cycles", self.cycles.to_string());
        line("dram_utilization", format!("{:?}", self.dram_utilization));
        line("fetcher_fired", self.fetcher_fired.to_string());
        line("compressor_fired", self.compressor_fired.to_string());
        line("core_stall_cycles", self.core_stall_cycles.to_string());
        line("retired_events", self.retired_events.to_string());
        line("llc.hits", self.llc.hits.to_string());
        line("llc.misses", self.llc.misses.to_string());
        line("llc.evictions", self.llc.evictions.to_string());
        line(
            "traffic.invalidations",
            self.traffic.invalidations.to_string(),
        );
        line("traffic.atomics", self.traffic.atomics.to_string());
        for c in DataClass::all() {
            line(
                &format!("traffic.read.{c}"),
                self.traffic.read_bytes(c).to_string(),
            );
            line(
                &format!("traffic.write.{c}"),
                self.traffic.write_bytes(c).to_string(),
            );
        }
        out
    }

    /// Parses the [`RunReport::to_kv`] format. Strict: a wrong header,
    /// an unknown key, a duplicate, or a missing field is an error, so
    /// format drift invalidates cached reports instead of misreading them.
    pub fn from_kv(text: &str) -> Result<RunReport, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty report")?;
        if header != REPORT_FORMAT {
            return Err(format!("bad header {header:?}, expected {REPORT_FORMAT:?}"));
        }
        let mut report = RunReport {
            cycles: 0,
            traffic: TrafficStats::new(),
            llc: CacheStats::default(),
            dram_utilization: 0.0,
            fetcher_fired: 0,
            compressor_fired: 0,
            core_stall_cycles: 0,
            retired_events: 0,
        };
        let mut seen = std::collections::BTreeSet::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            if !seen.insert(key.to_string()) {
                return Err(format!("duplicate key {key:?}"));
            }
            let int = || value.parse::<u64>().map_err(|e| format!("{key}: {e}"));
            match key {
                "cycles" => report.cycles = int()?,
                "dram_utilization" => {
                    report.dram_utilization =
                        value.parse::<f64>().map_err(|e| format!("{key}: {e}"))?
                }
                "fetcher_fired" => report.fetcher_fired = int()?,
                "compressor_fired" => report.compressor_fired = int()?,
                "core_stall_cycles" => report.core_stall_cycles = int()?,
                "retired_events" => report.retired_events = int()?,
                "llc.hits" => report.llc.hits = int()?,
                "llc.misses" => report.llc.misses = int()?,
                "llc.evictions" => report.llc.evictions = int()?,
                "traffic.invalidations" => report.traffic.invalidations = int()?,
                "traffic.atomics" => report.traffic.atomics = int()?,
                _ => {
                    let class_key = key
                        .strip_prefix("traffic.read.")
                        .or_else(|| key.strip_prefix("traffic.write."));
                    let Some(class_key) = class_key else {
                        return Err(format!("unknown key {key:?}"));
                    };
                    let class = DataClass::all()
                        .into_iter()
                        .find(|c| c.to_string() == class_key)
                        .ok_or_else(|| format!("unknown data class {class_key:?}"))?;
                    if key.starts_with("traffic.read.") {
                        report.traffic.record_read(class, int()?);
                    } else {
                        report.traffic.record_write(class, int()?);
                    }
                }
            }
        }
        let required = [
            "cycles",
            "dram_utilization",
            "fetcher_fired",
            "compressor_fired",
            "core_stall_cycles",
            "retired_events",
            "llc.hits",
            "llc.misses",
            "llc.evictions",
        ];
        for k in required {
            if !seen.contains(k) {
                return Err(format!("missing key {k:?}"));
            }
        }
        Ok(report)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {}  traffic {} B  dram-util {:.0}%  llc miss {:.1}%",
            self.cycles,
            self.traffic.total_bytes(),
            self.dram_utilization * 100.0,
            self.llc.miss_ratio() * 100.0,
        )?;
        for c in DataClass::all() {
            let b = self.traffic.class_bytes(c);
            if b > 0 {
                writeln!(f, "  {c:<18} {b:>12} B")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, bytes: u64) -> RunReport {
        let mut traffic = TrafficStats::new();
        traffic.record_read(DataClass::Updates, bytes);
        RunReport {
            cycles,
            traffic,
            llc: CacheStats::default(),
            dram_utilization: 0.5,
            fetcher_fired: 0,
            compressor_fired: 0,
            core_stall_cycles: 0,
            retired_events: 0,
        }
    }

    #[test]
    fn speedup_and_traffic_ratios() {
        let base = report(1000, 4000);
        let fast = report(250, 2000);
        assert_eq!(fast.speedup_over(&base), 4.0);
        assert_eq!(fast.traffic_vs(&base), 0.5);
    }

    #[test]
    fn zero_denominator_baselines_yield_undefined_ratio() {
        let empty = report(0, 0);
        let run = report(250, 2000);
        assert!(run.speedup_over(&empty).is_nan(), "zero-cycle baseline");
        assert!(run.traffic_vs(&empty).is_nan(), "zero-byte baseline");
        assert!(UNDEFINED_RATIO.is_nan());
        // A zero-cycle *numerator* is still a defined (clamped) ratio.
        assert_eq!(empty.speedup_over(&run), 250.0);
    }

    #[test]
    fn display_contains_cycles_and_classes() {
        let r = report(123, 64);
        let s = r.to_string();
        assert!(s.contains("cycles 123"));
        assert!(s.contains("Updates"));
    }

    #[test]
    fn kv_roundtrips_exactly() {
        let mut r = report(987_654_321, 4096);
        r.dram_utilization = 0.123_456_789_012_345_6;
        r.traffic.record_write(DataClass::Frontier, 192);
        r.traffic.invalidations = 7;
        r.traffic.atomics = 9;
        r.llc.hits = 11;
        r.llc.misses = 13;
        r.llc.evictions = 17;
        r.fetcher_fired = 19;
        r.compressor_fired = 23;
        r.core_stall_cycles = 29;
        r.retired_events = 31;
        let text = r.to_kv();
        let back = RunReport::from_kv(&text).unwrap();
        // Bit-exact: re-serializing produces identical bytes.
        assert_eq!(back.to_kv(), text);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(
            back.dram_utilization.to_bits(),
            r.dram_utilization.to_bits()
        );
        assert_eq!(back.traffic.total_bytes(), r.traffic.total_bytes());
        assert_eq!(back.llc.misses, r.llc.misses);
    }

    #[test]
    fn kv_parse_rejects_drift() {
        let r = report(1, 64);
        let good = r.to_kv();
        assert!(
            RunReport::from_kv("spzip-report-v0\ncycles 1\n").is_err(),
            "bad header"
        );
        assert!(
            RunReport::from_kv(&format!("{good}bogus_key 3\n")).is_err(),
            "unknown key"
        );
        assert!(
            RunReport::from_kv(&format!("{good}cycles 2\n")).is_err(),
            "duplicate"
        );
        let missing: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(RunReport::from_kv(&missing).is_err(), "missing fields");
    }

    #[test]
    fn run_path_types_are_send() {
        // The driver executes runs on worker threads; everything a run
        // produces or consumes must cross thread boundaries.
        fn assert_send<T: Send>() {}
        assert_send::<RunReport>();
        assert_send::<crate::Machine>();
        assert_send::<crate::MachineConfig>();
        assert_send::<crate::CoreWork>();
    }
}
