//! Run reports: the quantities the paper's figures plot.

use spzip_mem::cache::CacheStats;
use spzip_mem::stats::TrafficStats;
use spzip_mem::DataClass;
use std::fmt;

/// Results of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// DRAM-boundary traffic by data class.
    pub traffic: TrafficStats,
    /// LLC hit/miss counters.
    pub llc: CacheStats,
    /// Fraction of DRAM channel-cycles busy.
    pub dram_utilization: f64,
    /// Total fetcher firings across cores.
    pub fetcher_fired: u64,
    /// Total compressor firings across cores.
    pub compressor_fired: u64,
    /// Cycles cores spent blocked (queue waits + window-full waits).
    pub core_stall_cycles: u64,
    /// Events retired across cores.
    pub retired_events: u64,
}

impl RunReport {
    /// Speedup of this run over `baseline` (ratio of cycle counts).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// This run's traffic as a fraction of `baseline`'s.
    pub fn traffic_vs(&self, baseline: &RunReport) -> f64 {
        self.traffic.total_bytes() as f64 / baseline.traffic.total_bytes().max(1) as f64
    }

    /// Per-class traffic normalized to `denominator` bytes.
    pub fn breakdown(&self, denominator: u64) -> [f64; 6] {
        self.traffic.breakdown_normalized(denominator)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles {}  traffic {} B  dram-util {:.0}%  llc miss {:.1}%",
            self.cycles,
            self.traffic.total_bytes(),
            self.dram_utilization * 100.0,
            self.llc.miss_ratio() * 100.0,
        )?;
        for c in DataClass::all() {
            let b = self.traffic.class_bytes(c);
            if b > 0 {
                writeln!(f, "  {c:<18} {b:>12} B")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, bytes: u64) -> RunReport {
        let mut traffic = TrafficStats::new();
        traffic.record_read(DataClass::Updates, bytes);
        RunReport {
            cycles,
            traffic,
            llc: CacheStats::default(),
            dram_utilization: 0.5,
            fetcher_fired: 0,
            compressor_fired: 0,
            core_stall_cycles: 0,
            retired_events: 0,
        }
    }

    #[test]
    fn speedup_and_traffic_ratios() {
        let base = report(1000, 4000);
        let fast = report(250, 2000);
        assert_eq!(fast.speedup_over(&base), 4.0);
        assert_eq!(fast.traffic_vs(&base), 0.5);
    }

    #[test]
    fn display_contains_cycles_and_classes() {
        let r = report(123, 64);
        let s = r.to_string();
        assert!(s.contains("cycles 123"));
        assert!(s.contains("Updates"));
    }
}
