//! The machine: cores + per-core engines + memory system, advanced in
//! small cycle quanta.
//!
//! Each core is an in-order event consumer with a bounded window of
//! outstanding misses (standing in for the OOO window's memory-level
//! parallelism). Engines fire one operator per cycle. The main loop
//! advances everything in `quantum`-cycle steps, pulling new work for a
//! core from the [`WorkSource`] whenever its event queue drains — the
//! dynamic chunk scheduling of the paper's runtime.

#[cfg(feature = "sanitize")]
use crate::ctrace::CTrace;
use crate::event::Event;
use crate::report::RunReport;
#[cfg(feature = "sanitize")]
use crate::sanitize::{RunContext, SanitizeReport, TraceEvent, Violation};
use spzip_core::dcl::Pipeline;
use spzip_core::engine::{EngineConfig, EngineModel};
use spzip_core::func::Firing;
use spzip_mem::hierarchy::{MemConfig, MemorySystem};
#[cfg(feature = "sanitize")]
use spzip_mem::sanitize::Actor;
use spzip_mem::Port;
use std::collections::VecDeque;

/// The sanitizer trace slot threaded through the core step. A unit type
/// in default builds, so the hot path carries no state and no branches.
#[cfg(feature = "sanitize")]
type SanitizeSlot = Option<CTrace>;
#[cfg(not(feature = "sanitize"))]
type SanitizeSlot = ();

/// One blocked actor in a wedged machine and what it waits on — an edge
/// of the wait-for graph at the moment the watchdog tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitForEdge {
    /// The blocked actor, e.g. `"core 0"` or `"fetcher 1"`.
    pub actor: String,
    /// What it waits for: the core's front event, or the engine's
    /// stall diagnosis (`InputEmpty`, `OutputFull`, ...).
    pub waits_on: String,
}

/// Structured diagnosis of a machine deadlock: the watchdog's wait-for
/// report, produced instead of a panic when no component makes progress
/// for [`MachineConfig::deadlock_cycles`]. The liveness corpus asserts on
/// this report to confirm statically predicted deadlocks dynamically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog tripped.
    pub at_cycle: u64,
    /// Last cycle on which any core or engine made progress.
    pub last_progress: u64,
    /// Every blocked actor and its pending wait.
    pub edges: Vec<WaitForEdge>,
    /// Fetcher queue occupancies in quarter-words, indexed `[core][queue]`.
    pub fetcher_occupancy: Vec<Vec<u32>>,
    /// Compressor queue occupancies in quarter-words, `[core][queue]`.
    pub compressor_occupancy: Vec<Vec<u32>>,
}

impl DeadlockReport {
    /// Multi-line human-readable rendering (used by the `Display` impl).
    pub fn render(&self) -> String {
        let mut s = format!(
            "machine deadlock at cycle {} (last progress at {}):\n",
            self.at_cycle, self.last_progress
        );
        for e in &self.edges {
            s.push_str(&format!("  {} blocked on {}\n", e.actor, e.waits_on));
        }
        let occ = |name: &str, per_core: &[Vec<u32>], out: &mut String| {
            for (i, qs) in per_core.iter().enumerate() {
                if qs.iter().any(|&q| q > 0) {
                    let list: Vec<String> = qs
                        .iter()
                        .enumerate()
                        .map(|(q, &o)| format!("q{q}={o}"))
                        .collect();
                    out.push_str(&format!("  {name} {i} occupancy: {}\n", list.join(" ")));
                }
            }
        };
        occ("fetcher", &self.fetcher_occupancy, &mut s);
        occ("compressor", &self.compressor_occupancy, &mut s);
        s
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Machine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
    /// Outstanding misses a core can have in flight (the MLP window).
    pub core_mlp: usize,
    /// Cycles per enqueue/dequeue instruction when it does not block.
    pub queue_op_cycles: u32,
    /// Simulation quantum in cycles.
    pub quantum: u64,
    /// Fetcher engine parameters.
    pub fetcher: EngineConfig,
    /// Compressor engine parameters.
    pub compressor: EngineConfig,
    /// Abort if no component makes progress for this many cycles.
    pub deadlock_cycles: u64,
}

impl MachineConfig {
    /// The scaled Table II system.
    pub fn paper_scaled() -> Self {
        MachineConfig {
            mem: MemConfig::paper_scaled(),
            core_mlp: 10,
            queue_op_cycles: 1,
            quantum: 8,
            fetcher: EngineConfig::fetcher(),
            compressor: EngineConfig::compressor(),
            deadlock_cycles: 4_000_000,
        }
    }
}

/// One batch of work handed to a core: its event stream plus any firing
/// traces for that core's engines.
#[derive(Debug, Default)]
pub struct CoreWork {
    /// Events the core replays, in order.
    pub events: Vec<Event>,
    /// Firings to append to the core's fetcher (per operator).
    pub fetcher_trace: Option<Vec<Vec<Firing>>>,
    /// Firings to append to the core's compressor (per operator).
    pub compressor_trace: Option<Vec<Vec<Firing>>>,
}

/// Supplies chunks of work on demand (dynamic load balancing).
pub trait WorkSource {
    /// Next batch for `core`, or `None` if no work remains this phase.
    fn next(&mut self, core: usize) -> Option<CoreWork>;
}

impl<F: FnMut(usize) -> Option<CoreWork>> WorkSource for F {
    fn next(&mut self, core: usize) -> Option<CoreWork> {
        self(core)
    }
}

#[derive(Debug, Default)]
struct CoreState {
    events: VecDeque<Event>,
    /// Completion cycles of outstanding misses.
    window: Vec<u64>,
    /// Core-local time (>= global now; core idles until it).
    t: u64,
    /// Whether the source reported no more work.
    exhausted: bool,
    retired_events: u64,
    stall_cycles: u64,
}

/// The simulated machine. See the module docs.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    cores: Vec<CoreState>,
    fetchers: Vec<EngineModel>,
    compressors: Vec<EngineModel>,
    now: u64,
    /// Set when the watchdog trips; poisons subsequent phases.
    deadlock: Option<DeadlockReport>,
    /// SimSanitizer trace; `Some` only while a sanitized run is active.
    sanitize: SanitizeSlot,
    /// Violations noted by outer layers (codec checks, drain discipline).
    #[cfg(feature = "sanitize")]
    external_violations: Vec<Violation>,
}

impl Machine {
    /// Creates an idle machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.mem.cores;
        Machine {
            mem: MemorySystem::new(cfg.mem),
            cores: (0..n).map(|_| CoreState::default()).collect(),
            fetchers: (0..n).map(|i| EngineModel::new(cfg.fetcher, i)).collect(),
            compressors: (0..n)
                .map(|i| EngineModel::new(cfg.compressor, i))
                .collect(),
            now: 0,
            deadlock: None,
            sanitize: Default::default(),
            #[cfg(feature = "sanitize")]
            external_violations: Vec::new(),
            cfg,
        }
    }

    /// Turns on SimSanitizer collection: the memory probe, engine
    /// queue-op logs, and the synchronization trace. Idempotent. Call
    /// before the first phase; end the run with [`Machine::finish_sanitized`].
    #[cfg(feature = "sanitize")]
    pub fn enable_sanitizer(&mut self) {
        self.mem.enable_probe();
        for f in &mut self.fetchers {
            f.set_queue_logging(true);
        }
        for c in &mut self.compressors {
            c.set_queue_logging(true);
        }
        if self.sanitize.is_none() {
            self.sanitize = Some(CTrace::new(self.cfg.mem.cores));
        }
    }

    /// Whether a sanitized run is active.
    #[cfg(feature = "sanitize")]
    pub fn sanitizing(&self) -> bool {
        self.sanitize.is_some()
    }

    /// Records a violation found by an outer layer (codec conservation,
    /// functional drain discipline) for inclusion in the final report.
    #[cfg(feature = "sanitize")]
    pub fn note_violation(&mut self, v: Violation) {
        self.external_violations.push(v);
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The memory system (for oracles and direct inspection).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Enables the compressed-memory-hierarchy baseline (Fig. 22) with a
    /// static per-line BDI profile.
    pub fn enable_cmh(&mut self, profile: std::collections::HashMap<u64, u32>) {
        self.mem
            .enable_cmh(spzip_mem::hierarchy::BdiProfile::from_lines(profile), 6);
    }

    /// Loads a DCL program into every core's fetcher.
    pub fn load_fetcher_program(&mut self, pipeline: &Pipeline) {
        for f in &mut self.fetchers {
            f.load_program(pipeline, self.now);
        }
    }

    /// Loads a DCL program into every core's compressor.
    pub fn load_compressor_program(&mut self, pipeline: &Pipeline) {
        for c in &mut self.compressors {
            c.load_program(pipeline, self.now);
        }
    }

    /// Loads a DCL program into one core's fetcher only.
    pub fn load_fetcher_program_for(&mut self, core: usize, pipeline: &Pipeline) {
        self.fetchers[core].load_program(pipeline, self.now);
    }

    /// Loads a DCL program into one core's compressor only.
    pub fn load_compressor_program_for(&mut self, core: usize, pipeline: &Pipeline) {
        self.compressors[core].load_program(pipeline, self.now);
    }

    /// Overrides the fetcher scratchpad size on every core (the Fig. 21
    /// sensitivity sweep). Takes effect at the next program load.
    pub fn set_fetcher_scratchpad(&mut self, bytes: u32) {
        self.cfg.fetcher.scratchpad_bytes = bytes;
        #[cfg(feature = "sanitize")]
        let relog = self.sanitize.is_some();
        for (i, f) in self.fetchers.iter_mut().enumerate() {
            let mut cfg = self.cfg.fetcher;
            cfg.scratchpad_bytes = bytes;
            *f = EngineModel::new(cfg, i);
            #[cfg(feature = "sanitize")]
            if relog {
                f.set_queue_logging(true);
            }
        }
    }

    /// Runs one phase: pulls work from `source` per core until everything
    /// is drained, then returns the cycles this phase took.
    ///
    /// If no component makes progress for `deadlock_cycles` (a protocol
    /// bug in the instrumented application, or a liveness-corpus seed),
    /// the phase stops and records a structured [`DeadlockReport`]
    /// ([`Machine::deadlock`]); the machine is poisoned — later phases
    /// drain their source without simulating and return 0 cycles.
    pub fn run_phase(&mut self, source: &mut dyn WorkSource) -> u64 {
        if self.deadlock.is_some() {
            // Poisoned: consume the source (so callers that feed a fixed
            // batch list terminate) but simulate nothing further.
            for i in 0..self.cores.len() {
                while source.next(i).is_some() {}
            }
            return 0;
        }
        let start = self.now;
        for c in &mut self.cores {
            c.exhausted = false;
            c.t = self.now;
        }
        let mut last_progress = self.now;
        loop {
            // Refill drained cores.
            for i in 0..self.cores.len() {
                if self.cores[i].events.is_empty() && !self.cores[i].exhausted {
                    match source.next(i) {
                        Some(work) => {
                            self.cores[i].events.extend(work.events);
                            if let Some(t) = work.fetcher_trace {
                                self.fetchers[i].append_trace(t);
                            }
                            if let Some(t) = work.compressor_trace {
                                self.compressors[i].append_trace(t);
                            }
                        }
                        None => self.cores[i].exhausted = true,
                    }
                }
            }
            if self.quiescent() {
                break;
            }
            // Advance one quantum.
            let quantum = self.cfg.quantum;
            let mut progressed = false;
            for i in 0..self.cores.len() {
                progressed |= advance_core(
                    &self.cfg,
                    i,
                    &mut self.cores[i],
                    &mut self.fetchers[i],
                    &mut self.compressors[i],
                    &mut self.mem,
                    self.now,
                    quantum,
                    &mut self.sanitize,
                );
            }
            for i in 0..self.cores.len() {
                progressed |= self.fetchers[i].tick(self.now, quantum, &mut self.mem) > 0;
                #[cfg(feature = "sanitize")]
                drain_engine_events(
                    &mut self.sanitize,
                    &mut self.mem,
                    &mut self.fetchers[i],
                    Actor::Fetcher(i),
                );
                progressed |= self.compressors[i].tick(self.now, quantum, &mut self.mem) > 0;
                #[cfg(feature = "sanitize")]
                drain_engine_events(
                    &mut self.sanitize,
                    &mut self.mem,
                    &mut self.compressors[i],
                    Actor::Compressor(i),
                );
            }
            self.now += quantum;
            if progressed {
                last_progress = self.now;
            } else if self.now - last_progress > self.cfg.deadlock_cycles {
                self.deadlock = Some(self.deadlock_report(last_progress));
                break;
            }
        }
        // A phase ends only once every core and engine is quiescent: a
        // global barrier in happens-before terms.
        #[cfg(feature = "sanitize")]
        if let Some(tr) = self.sanitize.as_mut() {
            tr.record(TraceEvent::Barrier { cycle: self.now });
        }
        self.now - start
    }

    fn quiescent(&self) -> bool {
        // Cores may run their local clocks ahead of the global one within
        // a quantum; the phase ends only once global time catches up.
        self.cores
            .iter()
            .all(|c| c.exhausted && c.events.is_empty() && c.t <= self.now)
            && self.fetchers.iter().all(|f| f.idle())
            && self.compressors.iter().all(|c| c.idle())
    }

    /// The watchdog's structured wait-for report, if this machine wedged.
    pub fn deadlock(&self) -> Option<&DeadlockReport> {
        self.deadlock.as_ref()
    }

    /// Takes the deadlock report out of the machine (for embedding in
    /// the apps crate's `RunOutcome` before `finish()` consumes the
    /// machine).
    pub fn take_deadlock(&mut self) -> Option<DeadlockReport> {
        self.deadlock.take()
    }

    fn deadlock_report(&mut self, last_progress: u64) -> DeadlockReport {
        let mut edges = Vec::new();
        let mut fetcher_occupancy = Vec::new();
        let mut compressor_occupancy = Vec::new();
        for i in 0..self.cores.len() {
            if let Some(ev) = self.cores[i].events.front() {
                edges.push(WaitForEdge {
                    actor: format!("core {i}"),
                    waits_on: format!("{ev:?}"),
                });
            }
            if !self.fetchers[i].idle() {
                edges.push(WaitForEdge {
                    actor: format!("fetcher {i}"),
                    waits_on: format!("{:?}", self.fetchers[i].stall_reason(self.now)),
                });
            }
            if !self.compressors[i].idle() {
                edges.push(WaitForEdge {
                    actor: format!("compressor {i}"),
                    waits_on: format!("{:?}", self.compressors[i].stall_reason(self.now)),
                });
            }
            let occ = |e: &EngineModel| -> Vec<u32> {
                (0..e.queue_count()).map(|q| e.occupancy(q as u8)).collect()
            };
            fetcher_occupancy.push(occ(&self.fetchers[i]));
            compressor_occupancy.push(occ(&self.compressors[i]));
        }
        DeadlockReport {
            at_cycle: self.now,
            last_progress,
            edges,
            fetcher_occupancy,
            compressor_occupancy,
        }
    }

    /// Flushes dirty cached data to DRAM and produces the run report.
    pub fn finish(mut self) -> RunReport {
        self.build_report()
    }

    /// Ends a sanitized run: produces the timing report plus the
    /// sanitizer's verdict (built-in checkers over the recorded trace,
    /// then any externally noted violations).
    ///
    /// # Panics
    ///
    /// Panics if [`Machine::enable_sanitizer`] was never called.
    #[cfg(feature = "sanitize")]
    pub fn finish_sanitized(mut self) -> (RunReport, SanitizeReport) {
        let mut trace = self
            .sanitize
            .take()
            .expect("finish_sanitized without enable_sanitizer");
        trace.seal();
        let report = self.build_report();
        let probe = self.mem.take_probe().unwrap_or_default();
        let now = self.now;
        let context = RunContext {
            cores: self.cores.len(),
            core_mlp: self.cfg.core_mlp,
            outstanding: self
                .cores
                .iter()
                .map(|c| c.window.iter().filter(|&&done| done > now).count())
                .collect(),
            traffic: report.traffic.clone(),
            dram_fetch_lines: probe.dram_fetch_lines,
            dram_writeback_lines: probe.dram_writeback_lines,
            flushed_lines: probe.flushed_lines,
        };
        let mut violations = crate::sanitize::analyze_compressed(&trace, &context);
        violations.append(&mut self.external_violations);
        (
            report,
            SanitizeReport {
                violations,
                trace,
                context,
            },
        )
    }

    fn build_report(&mut self) -> RunReport {
        self.mem.flush_dirty();
        let fetcher_fired: u64 = self.fetchers.iter().map(|f| f.fired).sum();
        let compressor_fired: u64 = self.compressors.iter().map(|c| c.fired).sum();
        RunReport {
            cycles: self.now,
            traffic: self.mem.stats().clone(),
            llc: *self.mem.llc_stats(),
            dram_utilization: self.mem.dram().utilization(self.now.max(1)),
            fetcher_fired,
            compressor_fired,
            core_stall_cycles: self.cores.iter().map(|c| c.stall_cycles).sum(),
            retired_events: self.cores.iter().map(|c| c.retired_events).sum(),
        }
    }
}

/// Merges an engine's freshly collected queue-op log and memory records
/// into the trace. Both streams are internally in processing order;
/// merging by `(cycle, rank)` (stable) reconstructs the engine's
/// processing order across them: pending pushes commit first each cycle,
/// then a firing pops its input and touches memory.
#[cfg(feature = "sanitize")]
fn drain_engine_events(
    slot: &mut SanitizeSlot,
    mem: &mut MemorySystem,
    engine: &mut EngineModel,
    who: Actor,
) {
    let Some(tr) = slot.as_mut() else { return };
    let mut evs: Vec<TraceEvent> = engine
        .take_queue_log()
        .into_iter()
        .map(|e| {
            if e.push {
                TraceEvent::Push {
                    actor: who,
                    engine: who,
                    q: e.q,
                    quarters: e.quarters,
                    cycle: e.cycle,
                }
            } else {
                TraceEvent::Pop {
                    actor: who,
                    engine: who,
                    q: e.q,
                    quarters: e.quarters,
                    cycle: e.cycle,
                }
            }
        })
        .collect();
    evs.extend(mem.drain_probe_records().into_iter().map(TraceEvent::Mem));
    evs.sort_by_key(|e| (e.cycle(), e.rank()));
    tr.record_all(evs);
}

/// Advances one core through `[now, now+quantum)`. Returns whether it made
/// progress.
#[allow(clippy::too_many_arguments)]
fn advance_core(
    cfg: &MachineConfig,
    core_id: usize,
    core: &mut CoreState,
    fetcher: &mut EngineModel,
    compressor: &mut EngineModel,
    mem: &mut MemorySystem,
    now: u64,
    quantum: u64,
    sanitize: &mut SanitizeSlot,
) -> bool {
    let deadline = now + quantum;
    if core.t < now {
        core.t = now;
    }
    #[cfg(not(feature = "sanitize"))]
    let _ = sanitize;
    let mut progressed = false;
    while core.t < deadline {
        let Some(&ev) = core.events.front() else {
            break;
        };
        match ev {
            Event::Compute(n) => {
                core.t += n as u64;
                core.events.pop_front();
                core.retired_events += 1;
                progressed = true;
            }
            Event::Mem(acc) => {
                // Need a free slot in the outstanding-miss window.
                core.window.retain(|&c| c > core.t);
                if core.window.len() >= cfg.core_mlp {
                    let earliest = core.window.iter().copied().min().unwrap();
                    core.stall_cycles += earliest.saturating_sub(core.t);
                    core.t = earliest;
                    if core.t >= deadline {
                        break;
                    }
                    core.window.retain(|&c| c > core.t);
                }
                let done = mem.issue(core_id, Port::Core, &acc, core.t);
                #[cfg(feature = "sanitize")]
                if let Some(tr) = sanitize.as_mut() {
                    tr.record_all(mem.drain_probe_records().into_iter().map(TraceEvent::Mem));
                }
                if acc.op == spzip_mem::MemOp::Atomic {
                    // Locked read-modify-writes serialize the core (store
                    // buffer drain): no overlap with younger accesses.
                    // This is what makes software Push core-bound rather
                    // than bandwidth-bound (Sec. V-A).
                    core.stall_cycles += done.saturating_sub(core.t);
                    core.t = done;
                } else if done - core.t <= cfg.mem.l2_latency + cfg.mem.l1_latency {
                    // Fast accesses retire inline.
                    core.t = done;
                } else {
                    // Misses occupy the window while the core runs ahead
                    // (OOO-style MLP).
                    core.window.push(done);
                    core.t += 1;
                }
                core.events.pop_front();
                core.retired_events += 1;
                progressed = true;
            }
            Event::FetcherEnqueue { q, quarters } => {
                if fetcher.can_enqueue(q, quarters) {
                    fetcher.enqueue(q, quarters);
                    #[cfg(feature = "sanitize")]
                    if let Some(tr) = sanitize.as_mut() {
                        tr.record(TraceEvent::Push {
                            actor: Actor::Core(core_id),
                            engine: Actor::Fetcher(core_id),
                            q,
                            quarters: quarters as u32,
                            cycle: core.t,
                        });
                    }
                    core.t += cfg.queue_op_cycles as u64;
                    core.events.pop_front();
                    core.retired_events += 1;
                    progressed = true;
                } else {
                    core.stall_cycles += deadline - core.t;
                    core.t = deadline;
                }
            }
            Event::FetcherDequeue { q, quarters } => {
                if fetcher.can_dequeue(q, quarters) {
                    fetcher.dequeue(q, quarters);
                    #[cfg(feature = "sanitize")]
                    if let Some(tr) = sanitize.as_mut() {
                        tr.record(TraceEvent::Pop {
                            actor: Actor::Core(core_id),
                            engine: Actor::Fetcher(core_id),
                            q,
                            quarters: quarters as u32,
                            cycle: core.t,
                        });
                    }
                    core.t += cfg.queue_op_cycles as u64;
                    core.events.pop_front();
                    core.retired_events += 1;
                    progressed = true;
                } else {
                    core.stall_cycles += deadline - core.t;
                    core.t = deadline;
                }
            }
            Event::CompressorEnqueue { q, quarters } => {
                if compressor.can_enqueue(q, quarters) {
                    compressor.enqueue(q, quarters);
                    #[cfg(feature = "sanitize")]
                    if let Some(tr) = sanitize.as_mut() {
                        tr.record(TraceEvent::Push {
                            actor: Actor::Core(core_id),
                            engine: Actor::Compressor(core_id),
                            q,
                            quarters: quarters as u32,
                            cycle: core.t,
                        });
                    }
                    core.t += cfg.queue_op_cycles as u64;
                    core.events.pop_front();
                    core.retired_events += 1;
                    progressed = true;
                } else {
                    core.stall_cycles += deadline - core.t;
                    core.t = deadline;
                }
            }
            Event::CompressorDrain => {
                if compressor.idle() {
                    #[cfg(feature = "sanitize")]
                    if let Some(tr) = sanitize.as_mut() {
                        tr.record(TraceEvent::Drain {
                            actor: Actor::Core(core_id),
                            engine: Actor::Compressor(core_id),
                            cycle: core.t,
                        });
                    }
                    core.events.pop_front();
                    core.retired_events += 1;
                    progressed = true;
                } else {
                    core.stall_cycles += deadline - core.t;
                    core.t = deadline;
                }
            }
            Event::FetcherDrain => {
                if fetcher.idle() {
                    #[cfg(feature = "sanitize")]
                    if let Some(tr) = sanitize.as_mut() {
                        tr.record(TraceEvent::Drain {
                            actor: Actor::Core(core_id),
                            engine: Actor::Fetcher(core_id),
                            cycle: core.t,
                        });
                    }
                    core.events.pop_front();
                    core.retired_events += 1;
                    progressed = true;
                } else {
                    core.stall_cycles += deadline - core.t;
                    core.t = deadline;
                }
            }
        }
    }
    progressed
}

#[cfg(test)]
mod tests {
    use super::*;
    use spzip_mem::DataClass;

    fn tiny_config() -> MachineConfig {
        let mut cfg = MachineConfig::paper_scaled();
        cfg.mem.cores = 2;
        cfg
    }

    /// A source handing each core a fixed list of batches.
    struct ListSource {
        batches: Vec<VecDeque<CoreWork>>,
    }

    impl WorkSource for ListSource {
        fn next(&mut self, core: usize) -> Option<CoreWork> {
            self.batches[core].pop_front()
        }
    }

    #[test]
    fn compute_only_run_takes_expected_cycles() {
        let mut m = Machine::new(tiny_config());
        let mut src = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events: vec![Event::Compute(1000)],
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        let cycles = m.run_phase(&mut src);
        assert!((1000..1200).contains(&cycles), "{cycles}");
        let report = m.finish();
        assert_eq!(report.retired_events, 1);
    }

    #[test]
    fn parallel_cores_overlap() {
        // Two cores doing 1000 cycles each should take ~1000, not ~2000.
        let mut m = Machine::new(tiny_config());
        let work = || CoreWork {
            events: vec![Event::Compute(1000)],
            ..Default::default()
        };
        let mut src = ListSource {
            batches: vec![VecDeque::from([work()]), VecDeque::from([work()])],
        };
        let cycles = m.run_phase(&mut src);
        assert!(cycles < 1500, "{cycles}");
    }

    #[test]
    fn memory_bound_core_is_limited_by_mlp_and_bandwidth() {
        let mut m = Machine::new(tiny_config());
        // 1000 scattered misses.
        let events: Vec<Event> = (0..1000)
            .map(|i| Event::load(0x10000 + i * 8 * 997, 8, DataClass::DestinationVertex))
            .collect();
        let mut src = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events,
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        let cycles = m.run_phase(&mut src);
        // Far slower than 1 access/cycle, far faster than serialized
        // (1000 x ~150-cycle DRAM latency) thanks to the MLP window.
        assert!(cycles > 2_000, "{cycles}");
        assert!(cycles < 120_000, "{cycles}");
    }

    #[test]
    fn sequential_accesses_hit_after_first_line() {
        let mut m = Machine::new(tiny_config());
        let events: Vec<Event> = (0..64u64)
            .map(|i| Event::load(0x40000 + i * 4, 4, DataClass::AdjacencyMatrix))
            .collect();
        let mut src = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events,
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        m.run_phase(&mut src);
        let report = m.finish();
        // 64 x 4B touches 4 lines = 256 B.
        assert_eq!(report.traffic.read_bytes(DataClass::AdjacencyMatrix), 256);
    }

    #[test]
    fn multiple_phases_accumulate_time() {
        let mut m = Machine::new(tiny_config());
        let mk = || {
            let mut src_batches = vec![VecDeque::new(), VecDeque::new()];
            src_batches[0].push_back(CoreWork {
                events: vec![Event::Compute(500)],
                ..Default::default()
            });
            ListSource {
                batches: src_batches,
            }
        };
        let c1 = m.run_phase(&mut mk());
        let c2 = m.run_phase(&mut mk());
        assert!(c1 >= 500 && c2 >= 500);
        assert!(m.now() >= 1000);
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn sanitized_run_is_clean_and_accounts_all_lines() {
        let mut m = Machine::new(tiny_config());
        m.enable_sanitizer();
        assert!(m.sanitizing());
        // Same-core scattered frontier loads: watched, but race-free.
        let events: Vec<Event> = (0..64u64)
            .map(|i| Event::load(0x40000 + i * 64, 8, DataClass::Frontier))
            .collect();
        let mut src = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events,
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        m.run_phase(&mut src);
        let (report, san) = m.finish_sanitized();
        assert!(san.clean(), "{}", san.render());
        let events = san.trace.decode_all().expect("trace decodes");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, crate::sanitize::TraceEvent::Mem(_))),
            "watched accesses should be traced"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, crate::sanitize::TraceEvent::Barrier { .. })),
            "phase end should record a barrier"
        );
        assert_eq!(report.traffic.read_bytes(DataClass::Frontier), 64 * 64);
    }

    #[test]
    fn watchdog_records_structured_report_and_poisons_later_phases() {
        let mut cfg = tiny_config();
        cfg.deadlock_cycles = 2_000;
        let mut m = Machine::new(cfg);
        // A lint-clean one-operator program whose trace is never appended:
        // the engine consumes nothing, so the core's enqueues eventually
        // block forever on a full queue.
        let mut b = spzip_core::dcl::PipelineBuilder::new();
        let q0 = b.queue(16);
        let q1 = b.queue(16);
        b.operator(
            spzip_core::dcl::OperatorKind::RangeFetch {
                base: 0x1000,
                idx_bytes: 8,
                elem_bytes: 8,
                input: spzip_core::dcl::RangeInput::Pairs,
                marker: None,
                class: DataClass::AdjacencyMatrix,
            },
            q0,
            vec![q1],
        );
        let p = b.build().unwrap();
        m.load_fetcher_program_for(0, &p);
        let events: Vec<Event> = (0..200)
            .map(|_| Event::FetcherEnqueue { q: q0, quarters: 8 })
            .collect();
        let mut src = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events,
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        m.run_phase(&mut src);
        let report = m.deadlock().expect("watchdog must trip").clone();
        assert!(report.at_cycle > report.last_progress);
        assert!(
            report
                .edges
                .iter()
                .any(|e| e.actor == "core 0" && e.waits_on.contains("FetcherEnqueue")),
            "{report}"
        );
        assert!(
            report.fetcher_occupancy[0][q0 as usize] > 0,
            "wedged queue must show occupancy: {report}"
        );
        assert!(report.render().contains("machine deadlock at cycle"));
        // Poisoned: a later phase drains its source and simulates nothing.
        let mut src2 = ListSource {
            batches: vec![
                VecDeque::from([CoreWork {
                    events: vec![Event::Compute(1000)],
                    ..Default::default()
                }]),
                VecDeque::new(),
            ],
        };
        assert_eq!(m.run_phase(&mut src2), 0);
        assert!(
            src2.batches[0].is_empty(),
            "poisoned phase drains its source"
        );
        assert!(m.take_deadlock().is_some());
    }

    #[test]
    fn work_stealing_balances_load() {
        // A shared pool of 20 batches: with 2 cores, wall time should be
        // about half the serial time.
        struct Pool {
            left: usize,
        }
        impl WorkSource for Pool {
            fn next(&mut self, _core: usize) -> Option<CoreWork> {
                if self.left == 0 {
                    return None;
                }
                self.left -= 1;
                Some(CoreWork {
                    events: vec![Event::Compute(1000)],
                    ..Default::default()
                })
            }
        }
        let mut m = Machine::new(tiny_config());
        let cycles = m.run_phase(&mut Pool { left: 20 });
        assert!((10_000..13_000).contains(&cycles), "{cycles}");
    }
}
